"""ExecutionListener hooks: ordering, counts, and observational purity."""

import pytest

from repro.core.executor import (
    ExecutionListener,
    QueryDeadline,
    TERMINATED_DEADLINE,
    TERMINATED_THRESHOLD,
    TraceListener,
)
from repro.core.session import QuerySession
from tests.helpers import make_random_index


class RecordingListener(ExecutionListener):
    """Logs every hook invocation as (event, payload) tuples."""

    def __init__(self):
        self.events = []

    def on_query_start(self, plan, state):
        self.events.append(("query_start", plan.algorithm))

    def on_round_start(self, state):
        self.events.append(("round_start", state.round_no))

    def on_probe(self, state, doc_id, dim, score):
        self.events.append(("probe", doc_id, dim))

    def on_round_end(self, state, trace):
        self.events.append(("round_end", trace.round_no))

    def on_termination(self, state, result, reason):
        self.events.append(("termination", reason))


@pytest.fixture(scope="module")
def setup():
    index, terms = make_random_index(seed=42)
    return QuerySession(index, cost_ratio=100.0), terms


def names(listener):
    return [event[0] for event in listener.events]


class TestEventProtocol:
    def test_brackets_and_round_pairing(self, setup):
        session, terms = setup
        listener = RecordingListener()
        session.run(terms, 10, algorithm="TA", listeners=(listener,))
        seen = names(listener)
        assert seen[0] == "query_start"
        assert seen[-1] == "termination"
        assert seen.count("round_start") == seen.count("round_end")
        assert seen.count("query_start") == 1
        assert seen.count("termination") == 1

    def test_probe_events_match_the_meter(self, setup):
        session, terms = setup
        listener = RecordingListener()
        result = session.run(terms, 10, algorithm="TA",
                             listeners=(listener,))
        probes = [e for e in listener.events if e[0] == "probe"]
        assert len(probes) == result.stats.random_accesses
        assert result.stats.random_accesses > 0

    def test_nra_emits_no_probes(self, setup):
        session, terms = setup
        listener = RecordingListener()
        result = session.run(terms, 10, algorithm="NRA",
                             listeners=(listener,))
        assert not [e for e in listener.events if e[0] == "probe"]
        assert result.stats.random_accesses == 0

    def test_threshold_termination_reason(self, setup):
        session, terms = setup
        listener = RecordingListener()
        session.run(terms, 10, algorithm="NRA", listeners=(listener,))
        assert listener.events[-1] == ("termination", TERMINATED_THRESHOLD)

    def test_deadline_termination_reason(self, setup):
        session, terms = setup
        listener = RecordingListener()
        result = session.run(
            terms, 10, algorithm="NRA",
            deadline=QueryDeadline(cost_budget=100.0),
            listeners=(listener,),
        )
        assert listener.events[-1] == ("termination", TERMINATED_DEADLINE)
        assert result.degraded


class TestObservationalPurity:
    @pytest.mark.parametrize("algorithm", ["NRA", "TA", "KSR-Last-Ben"])
    def test_listeners_do_not_change_the_access_sequence(
        self, setup, algorithm
    ):
        session, terms = setup
        bare = session.run(terms, 10, algorithm=algorithm)
        observed = session.run(
            terms, 10, algorithm=algorithm,
            listeners=(RecordingListener(), TraceListener()),
        )
        assert bare.doc_ids == observed.doc_ids
        assert bare.stats.sorted_accesses == observed.stats.sorted_accesses
        assert bare.stats.random_accesses == observed.stats.random_accesses
        assert bare.stats.cost == observed.stats.cost
        assert bare.stats.rounds == observed.stats.rounds


class TestAttachment:
    def test_session_level_listeners_see_every_query(self):
        index, terms = make_random_index(seed=3)
        listener = RecordingListener()
        session = QuerySession(index, listeners=(listener,))
        session.run_many([terms, terms[:2], terms[:1]], k=3)
        assert names(listener).count("query_start") == 3
        assert names(listener).count("termination") == 3

    def test_trace_listener_resets_between_queries(self):
        index, terms = make_random_index(seed=3)
        tracer = TraceListener()
        session = QuerySession(index, listeners=(tracer,))
        first = session.run(terms, 3, algorithm="NRA")
        first_rounds = len(tracer.records)
        session.run(terms, 3, algorithm="NRA")
        assert len(tracer.records) == first_rounds
        assert first.stats.rounds == first_rounds
