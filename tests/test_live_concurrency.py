"""Writer-vs-reader hammers and fork safety for the live index.

The central claim: queries never observe a *torn epoch*.  A writer
continuously replaces one sentinel document whose two term scores are
always written equal; any reader that resolved the sentinel must
therefore see ``score(a) == score(b)`` — a mixed view (term 'a' from
one version, term 'b' from another) is exactly what snapshot isolation
forbids.  The hammer runs that writer against query threads and a
background maintainer (so seals and compactions interleave with both),
then closes with a full differential check against a from-scratch
rebuild of the final state.

Fork safety mirrors ``test_session_forksafety.py``: a child forked
while a maintainer thread runs must neither join nor double-run the
parent's compactor, and a ``ShardedSession.close()`` in the parent must
stop every shard's maintainer (satellite: the PR 4 fork/close sweep now
covers live compaction threads).
"""

import multiprocessing
import os
import signal
import threading
import time
import traceback

import numpy as np
import pytest

from repro.core.session import QuerySession, ShardedSession
from repro.live import LiveIndex, MaintenanceConfig, ShardedLiveIndex
from repro.storage.index_builder import build_index

TERMS = ["a", "b"]
BLOCK = 16
SENTINEL = 77_000
_CHILD_TIMEOUT = 60.0


def _base(num_docs=120, seed=5):
    rng = np.random.default_rng(seed)
    postings = {t: [] for t in TERMS}
    for doc in range(num_docs):
        for t in TERMS:
            postings[t].append((doc, round(float(rng.random()), 6)))
    return build_index(postings, block_size=BLOCK)


def run_in_fork(child):
    """Fork, run ``child()``, return its exit code (or "timeout")."""
    pid = os.fork()
    if pid == 0:  # child
        code = 0
        try:
            child()
        except BaseException:
            traceback.print_exc()
            code = 1
        finally:
            os._exit(code)
    deadline = time.monotonic() + _CHILD_TIMEOUT
    while time.monotonic() < deadline:
        done, status = os.waitpid(pid, os.WNOHANG)
        if done == pid:
            return os.waitstatus_to_exitcode(status)
        time.sleep(0.02)
    os.kill(pid, signal.SIGKILL)
    os.waitpid(pid, 0)
    return "timeout"


fork_available = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="fork start method unavailable on this platform",
)


def test_writer_reader_maintainer_hammer():
    """No errors, no torn epoch, and the end state is rebuild-identical."""
    live = LiveIndex(_base(), block_size=BLOCK)
    live.start_maintenance(
        MaintenanceConfig(seal_ops=40, max_segments=3, interval_s=0.002)
    )
    session = QuerySession(cost_ratio=100.0)
    binding = session.open_live(live)

    written = []  # sentinel scores, append-only, read by the checker
    errors = []
    stop = threading.Event()

    def writer():
        try:
            rng = np.random.default_rng(11)
            i = 0
            while not stop.is_set():
                score = 2.0 + (i % 97) * 0.01  # always top-1, both terms
                live.upsert(SENTINEL, {"a": score, "b": score})
                written.append(score)
                doc = int(rng.integers(0, 160))
                if rng.random() < 0.6:
                    live.upsert(doc, {
                        "a": round(float(rng.random()), 6),
                        "b": round(float(rng.random()), 6),
                    })
                else:
                    live.delete(doc)
                i += 1
        except BaseException as exc:
            errors.append(exc)

    def reader():
        try:
            while not stop.is_set():
                # RR-All resolves every met doc by random access, so the
                # sentinel's worstscore is its true aggregate a+b = 2s.
                result = binding.run(TERMS, 1, algorithm="RR-All")
                (item,) = result.items
                if item.doc_id == SENTINEL:
                    half = item.worstscore / 2.0
                    assert any(
                        abs(half - s) < 1e-12 for s in written
                    ), "torn epoch: %r not a written sentinel score" % half
        except BaseException as exc:
            errors.append(exc)

    threads = [threading.Thread(target=writer)] + [
        threading.Thread(target=reader) for _ in range(3)
    ]
    for t in threads:
        t.start()
    time.sleep(1.5)
    stop.set()
    for t in threads:
        t.join(30)
    assert not errors, errors
    stats = live.stats()
    assert stats["seals"] > 0  # the maintainer actually ran

    # final differential: live content == from-scratch rebuild
    with live.snapshot() as snap:
        postings = {t: [] for t in snap.index.terms}
        for term in snap.index.terms:
            lst = snap.index.list_for(term)
            postings[term] = list(
                zip(lst.doc_ids_by_rank.tolist(), lst.scores_by_rank.tolist())
            )
        rebuilt = build_index(postings, block_size=BLOCK)
        got = session.run(TERMS, 5, index=snap.index)
        want = session.run(TERMS, 5, index=rebuilt)
        assert [
            (i.doc_id, i.worstscore, i.bestscore) for i in got.items
        ] == [(i.doc_id, i.worstscore, i.bestscore) for i in want.items]
        assert got.stats.cost == want.stats.cost
    binding.close()
    assert live.maintainer is not None and not live.maintainer.running


def test_concurrent_snapshots_pin_retired_segments(tmp_path):
    """Compaction must defer spilled-file unlinks until readers let go."""
    live = LiveIndex(_base(), block_size=BLOCK, spill_dir=tmp_path)
    for doc in range(40):
        live.upsert(1000 + doc, {"a": 0.5, "b": 0.5})
    assert live.seal()
    for doc in range(40):
        live.upsert(2000 + doc, {"a": 0.4, "b": 0.4})
    assert live.seal()
    pinned = live.snapshot()
    assert live.compact(force=True)
    # the pre-compaction segment files are retired but still on disk
    assert len(list(tmp_path.glob("segment-*.v3"))) >= 3
    before = pinned.index.list_for("a").doc_ids_by_rank.copy()
    pinned.close()
    live.close()
    # ...and now only the merged segment survives
    remaining = list(tmp_path.glob("segment-*.v3"))
    assert len(remaining) == 1
    assert before.size == 80 + 120


@fork_available
def test_forked_child_disowns_maintainer():
    """The child neither joins nor double-runs the parent's compactor."""
    live = LiveIndex(_base(), block_size=BLOCK)
    live.start_maintenance(MaintenanceConfig(interval_s=0.01))
    assert live.maintainer.running

    def child():
        assert not live.maintainer.running  # thread exists only in parent
        live.maintainer.stop()  # must be a fast no-op, not a join
        live.upsert(5, {"a": 0.9})  # fresh locks: writes still work
        assert live.seal()
        live.close()

    assert run_in_fork(child) == 0
    assert live.maintainer.running  # parent's thread is untouched
    live.close()
    assert not live.maintainer.running


@fork_available
def test_sharded_close_stops_every_maintainer():
    sharded = ShardedLiveIndex(_base(), num_shards=3, block_size=BLOCK)
    sharded.start_maintenance(MaintenanceConfig(interval_s=0.01))
    session = ShardedSession(live=sharded, cost_ratio=100.0)
    for doc in range(20):
        sharded.upsert(500 + doc, {"a": 0.3, "b": 0.3})
    assert session.run(TERMS, 3).items

    def child():
        # fork while maintainers run: close() in the child must not
        # hang joining parent-only threads
        session.close()

    assert run_in_fork(child) == 0
    for shard in sharded.shards:
        assert shard.maintainer.running  # child didn't stop the parent's
    session.close()
    for shard in sharded.shards:
        assert not shard.maintainer.running
