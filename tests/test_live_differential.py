"""The live-index headline correctness harness.

A :class:`~repro.live.index.LiveIndex` promises that a snapshot is
*access-identical* to an index rebuilt from scratch at the same epoch:
not just the same top-k answers, but byte-identical execution — same
item tuples (ids and [worstscore, bestscore] intervals), same #SA, same
#RA, same abstract COST — for every registered algorithm triple and
every bookkeeping mode.  That property is what makes the rest of the
stack (sessions, threshold prediction, sharded coordination, serving)
correct over a live index *without modification*: the executor cannot
tell the layered snapshot from a freshly built index.

This suite pins that promise.  One seeded op script drives a live index
through its whole lifecycle — delta-only, sealed segment + delta,
compacted, compacted + fresh delta — and at every checkpoint a second
index is built from scratch (``build_index``) from the model state.
Each parametrized case then executes the same query on both indexes and
requires identical fingerprints.

Vocabulary note: a live snapshot keeps terms whose postings were all
deleted in the vocabulary (with empty lists), mirroring the sharded
builder's every-term guarantee, so rebuilds construct from a fixed
term-ordered postings dict with possibly-empty lists.
"""

import numpy as np
import pytest

from repro.core.algorithms import available_algorithms
from repro.core.bookkeeping import BOOKKEEPING_MODES
from repro.core.session import QuerySession
from repro.live import LiveIndex
from repro.storage.index_builder import build_index

BLOCK = 32
K = 5
TERMS = ["t0", "t1", "t2"]
SEED = 1701


def _random_version(rng, terms=TERMS, density=0.75):
    version = {
        t: round(float(rng.random()), 6) for t in terms if rng.random() < density
    }
    return version or {terms[0]: round(float(rng.random()), 6)}


def _apply_ops(rng, live, model, count, doc_space=400):
    """Drive `count` random ops into the live index AND the dict model."""
    for _ in range(count):
        doc = int(rng.integers(0, doc_space))
        if rng.random() < 0.65:
            version = _random_version(rng)
            live.upsert(doc, version)
            model[doc] = version
        else:
            live.delete(doc)
            model.pop(doc, None)


def _rebuild(model, term_order):
    """From-scratch index over the model, matching snapshot term order."""
    postings = {term: [] for term in term_order}
    for doc, version in model.items():
        for term, score in version.items():
            postings[term].append((doc, score))
    return build_index(postings, block_size=BLOCK)


@pytest.fixture(scope="module")
def checkpoints():
    """(label, pinned snapshot, rebuilt index) at five lifecycle stages."""
    rng = np.random.default_rng(SEED)
    model = {d: _random_version(rng) for d in range(240)}
    base = _rebuild(model, TERMS)
    live = LiveIndex(base, block_size=BLOCK)

    stages = []

    def capture(label):
        snap = live.snapshot()  # held (not closed) until module teardown
        term_order = snap.index.terms
        rebuilt = _rebuild(model, term_order)
        assert rebuilt.terms == term_order, label
        assert rebuilt.num_docs == snap.index.num_docs, label
        stages.append((label, snap, rebuilt))

    capture("base")
    _apply_ops(rng, live, model, 50)
    capture("delta")
    assert live.seal()
    _apply_ops(rng, live, model, 40)
    capture("segment+delta")
    assert live.seal()
    assert live.compact(force=True)
    capture("compacted")
    _apply_ops(rng, live, model, 30)
    capture("compacted+delta")

    yield stages
    for _label, snap, _rebuilt in stages:
        snap.close()
    live.close()


@pytest.fixture(scope="module")
def sessions():
    return {
        mode: QuerySession(cost_ratio=100.0, bookkeeping=mode)
        for mode in BOOKKEEPING_MODES
    }


def _fingerprint(session, index, algorithm, weights=None):
    result = session.run(TERMS, K, algorithm=algorithm, index=index,
                         weights=weights)
    assert not result.degraded
    return (
        tuple(
            (item.doc_id, item.worstscore, item.bestscore)
            for item in result.items
        ),
        result.stats.sorted_accesses,
        result.stats.random_accesses,
        result.stats.cost,
    )


@pytest.mark.parametrize("mode", BOOKKEEPING_MODES)
@pytest.mark.parametrize("algorithm", sorted(available_algorithms()))
def test_snapshot_access_identical_to_rebuild(checkpoints, sessions,
                                              algorithm, mode):
    """Items, intervals, #SA, #RA and COST all match, at every stage."""
    session = sessions[mode]
    for label, snap, rebuilt in checkpoints:
        got = _fingerprint(session, snap.index, algorithm)
        want = _fingerprint(session, rebuilt, algorithm)
        assert got == want, "diverged at checkpoint %r" % label


def test_weighted_queries_match(checkpoints, sessions):
    session = sessions["columnar"]
    weights = [0.2, 1.0, 0.6]
    for label, snap, rebuilt in checkpoints:
        got = _fingerprint(session, snap.index, "KSR-Last-Ben", weights)
        want = _fingerprint(session, rebuilt, "KSR-Last-Ben", weights)
        assert got == want, "diverged at checkpoint %r" % label


def test_snapshot_lists_bytes_equal_rebuild(checkpoints):
    """Structural identity below the engine: the posting arrays match."""
    for label, snap, rebuilt in checkpoints:
        assert snap.index.terms == rebuilt.terms, label
        for term in rebuilt.terms:
            ours = snap.index.list_for(term)
            theirs = rebuilt.list_for(term)
            assert np.array_equal(
                ours.doc_ids_by_rank, theirs.doc_ids_by_rank
            ), (label, term)
            assert np.array_equal(
                ours.scores_by_rank, theirs.scores_by_rank
            ), (label, term)
            assert ours.block_size == theirs.block_size


def test_full_merge_matches_rebuild(checkpoints, sessions):
    """The exact-scan baseline agrees too (independent of the engine)."""
    session = sessions["reference"]
    for label, snap, rebuilt in checkpoints:
        ours = session.full_merge(TERMS, K, index=snap.index)
        theirs = session.full_merge(TERMS, K, index=rebuilt)
        assert [
            (i.doc_id, i.worstscore) for i in ours.items
        ] == [(i.doc_id, i.worstscore) for i in theirs.items], label
