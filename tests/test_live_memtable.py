"""Unit pins for the in-memory write buffer."""

import numpy as np
import pytest

from repro.live.memtable import Memtable, validate_update


def test_upsert_replaces_whole_version():
    mt = Memtable()
    mt.upsert(1, {"a": 0.5, "b": 0.4})
    mt.upsert(1, {"c": 0.9})  # complete replacement, not a merge
    assert mt.version_of(1) == {"c": 0.9}
    docs, scores = mt.postings_for("a")
    assert docs.size == 0 and scores.size == 0
    docs, scores = mt.postings_for("c")
    assert docs.tolist() == [1] and scores.tolist() == [0.9]


def test_delete_tombstones_and_counts():
    mt = Memtable()
    mt.upsert(1, {"a": 0.5})
    mt.upsert(2, {"a": 0.6})
    mt.delete(1)
    mt.delete(9)  # unknown docs tombstone too (they may live below)
    assert len(mt) == 3  # distinct touched docs: 1, 2, 9
    assert mt.num_postings == 1
    assert mt.version_of(1) is None and mt.version_of(9) is None
    assert 1 in mt and 9 in mt and 5 not in mt
    assert mt.touched_docs().tolist() == [1, 2, 9]


def test_postings_are_doc_sorted_and_cached():
    mt = Memtable()
    for doc in (5, 1, 9, 3):
        mt.upsert(doc, {"t": 0.1 * doc})
    docs, scores = mt.postings_for("t")
    assert docs.tolist() == [1, 3, 5, 9]
    assert docs.dtype == np.int64 and scores.dtype == np.float64
    again, _ = mt.postings_for("t")
    assert again is docs  # staged arrays are reused until invalidated
    mt.upsert(2, {"t": 0.7})
    rebuilt, _ = mt.postings_for("t")
    assert rebuilt is not docs and rebuilt.tolist() == [1, 2, 3, 5, 9]


def test_num_ops_counts_every_write():
    mt = Memtable()
    mt.upsert(1, {"a": 0.5})
    mt.upsert(1, {"a": 0.6})
    mt.delete(1)
    assert mt.num_ops == 3
    assert len(mt) == 1


def test_freeze_is_immune_to_later_writes():
    mt = Memtable()
    mt.upsert(1, {"a": 0.5})
    frozen = mt.freeze()
    mt.upsert(1, {"a": 0.9})
    mt.upsert(2, {"b": 0.1})
    assert frozen == {1: {"a": 0.5}}


def test_validate_update_rejects_bad_payloads():
    with pytest.raises(ValueError):
        validate_update(1, {})
    with pytest.raises(ValueError):
        validate_update(1, {"a": float("nan")})
    with pytest.raises(ValueError):
        validate_update(1, {"a": float("inf")})
    with pytest.raises(ValueError):
        validate_update(1, {"a": -0.1})
    with pytest.raises(ValueError):
        validate_update(1, {"": 0.5})
    with pytest.raises(ValueError):
        validate_update(1, {3: 0.5})
    doc, version = validate_update(np.int64(4), {"a": 1})
    assert doc == 4 and isinstance(doc, int)
    assert version == {"a": 1.0} and isinstance(version["a"], float)


def test_alive_postings_excludes_tombstones():
    mt = Memtable()
    mt.upsert(1, {"a": 0.5, "b": 0.2})
    mt.upsert(2, {"a": 0.6})
    mt.delete(2)
    alive = mt.alive_postings()
    assert sorted(alive) == ["a", "b"]
    assert alive["a"] == [(1, 0.5)]
    assert alive["b"] == [(1, 0.2)]
