"""Property-based op-script tests for the live index.

Hypothesis drives random interleavings of ``upsert`` / ``delete`` /
``seal`` / ``compact`` against a live index and a trivially-correct
model (a dict of doc → version), and requires the snapshot's observable
content — vocabulary, per-term posting arrays, ``num_docs`` — to equal
an oracle computed from the model after every maintenance event.  On
top of the content oracle the scripts pin the structural invariants the
subsystem promises:

* snapshot isolation — a snapshot taken mid-script never changes, no
  matter how many writes/seals/compactions follow,
* epoch identity — the snapshot object is reused while the epoch is
  unchanged and replaced when it advances,
* compaction reclaims — force-compacting a fully-deleted corpus leaves
  zero segments and accounts every reclaimed posting/tombstone.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.live import LiveIndex
from repro.storage.index_builder import build_index

TERMS = ["a", "b", "c"]
BLOCK = 8

SCORES = st.floats(min_value=0.0, max_value=1.0, allow_nan=False,
                   allow_infinity=False, width=32)
DOC_IDS = st.integers(min_value=0, max_value=40)
VERSIONS = st.dictionaries(st.sampled_from(TERMS), SCORES, min_size=1)

OPS = st.one_of(
    st.tuples(st.just("upsert"), DOC_IDS, VERSIONS),
    st.tuples(st.just("delete"), DOC_IDS),
    st.just(("seal",)),
    st.just(("compact",)),
)


def _model_lists(model):
    """term -> (doc_ids_by_rank, scores_by_rank) oracle from the model."""
    out = {}
    for term in TERMS:
        postings = sorted(
            ((doc, version[term]) for doc, version in model.items()
             if term in version),
            key=lambda p: (-p[1], p[0]),
        )
        out[term] = (
            np.array([p[0] for p in postings], dtype=np.int64),
            np.array([p[1] for p in postings], dtype=np.float64),
        )
    return out


def _check_content(snap, model):
    oracle = _model_lists(model)
    for term in TERMS:
        lst = snap.index.list_for(term)
        want_docs, want_scores = oracle[term]
        assert np.array_equal(lst.doc_ids_by_rank, want_docs), term
        assert np.array_equal(lst.scores_by_rank, want_scores), term
    assert snap.index.num_docs == max(len(model), 1)


def _base():
    postings = {t: [] for t in TERMS}
    model = {}
    rng = np.random.default_rng(99)
    for doc in range(12):
        version = {t: round(float(rng.random()), 6) for t in TERMS[:2]}
        model[doc] = version
        for t, s in version.items():
            postings[t].append((doc, s))
    return build_index(postings, block_size=BLOCK), model


@settings(max_examples=60, deadline=None)
@given(script=st.lists(OPS, max_size=30))
def test_snapshot_content_tracks_model(script):
    base, model = _base()
    with LiveIndex(base, block_size=BLOCK) as live:
        for op in script:
            if op[0] == "upsert":
                version = {t: float(s) for t, s in op[2].items()}
                live.upsert(op[1], version)
                model[op[1]] = version
            elif op[0] == "delete":
                live.delete(op[1])
                model.pop(op[1], None)
            elif op[0] == "seal":
                live.seal()
            else:
                live.compact(force=True)
        with live.snapshot() as snap:
            _check_content(snap, model)


@settings(max_examples=25, deadline=None)
@given(script=st.lists(OPS, max_size=20))
def test_snapshot_isolation_survives_any_suffix(script):
    """A pinned snapshot is frozen at its epoch, whatever happens next."""
    base, model = _base()
    with LiveIndex(base, block_size=BLOCK) as live:
        live.upsert(100, {"a": 0.5})
        model[100] = {"a": 0.5}
        pinned = live.snapshot()
        frozen_model = {d: dict(v) for d, v in model.items()}
        try:
            for op in script:
                if op[0] == "upsert":
                    live.upsert(op[1], dict(op[2]))
                elif op[0] == "delete":
                    live.delete(op[1])
                elif op[0] == "seal":
                    live.seal()
                else:
                    live.compact(force=True)
            _check_content(pinned, frozen_model)
        finally:
            pinned.close()


def test_epoch_identity_and_advance():
    base, model = _base()
    with LiveIndex(base, block_size=BLOCK) as live:
        with live.snapshot() as one, live.snapshot() as two:
            assert one is two  # unchanged epoch: stable identity
        live.upsert(7, {"b": 0.9})
        with live.snapshot() as three:
            assert three is not one
            assert three.epoch > one.epoch


def test_compaction_reclaims_fully_deleted_corpus(tmp_path):
    with LiveIndex(spill_dir=tmp_path, block_size=BLOCK) as live:
        for doc in range(30):
            live.upsert(doc, {"a": 0.1 + doc * 0.01, "b": 0.2})
        assert live.seal()
        for doc in range(30):
            live.delete(doc)
        assert live.seal()
        assert live.compact(force=True)
        stats = live.stats()
        assert stats["segments"] == 0
        assert stats["reclaimed_postings"] == 60
        assert stats["reclaimed_tombstones"] == 30
        with live.snapshot() as snap:
            # no base and no surviving layer: the vocabulary is empty,
            # exactly like an index built from nothing
            assert snap.index.terms == []
            assert "a" not in snap.index
        # nothing left on disk once no snapshot pins the old segments
        assert list(tmp_path.glob("segment-*.v3")) == []


def test_tombstone_kept_while_doc_alive_below():
    """A delete of a base doc must survive compaction of the segments."""
    postings = {"a": [(1, 0.9), (2, 0.8)], "b": [], "c": []}
    base = build_index(postings, block_size=BLOCK)
    with LiveIndex(base, block_size=BLOCK) as live:
        live.delete(1)
        assert live.seal()
        live.upsert(3, {"a": 0.7})
        assert live.seal()
        assert live.compact(force=True)
        with live.snapshot() as snap:
            docs = snap.index.list_for("a").doc_ids_by_rank.tolist()
            assert docs == [2, 3]  # doc 1 stays dead


def test_invalid_writes_rejected_atomically():
    base, _model = _base()
    with LiveIndex(base, block_size=BLOCK) as live:
        before = live.epoch
        with pytest.raises(ValueError):
            live.apply([
                ("upsert", 1, {"a": 0.5}),
                ("upsert", 2, {"a": -3.0}),  # bad score: nothing applies
            ])
        assert live.epoch == before
        with pytest.raises(ValueError):
            live.upsert(4, {})
        with pytest.raises(ValueError):
            live.apply([("replace", 1, None)])
