"""End-to-end tests for ``POST /update`` on the query service.

Same harness as ``test_serve_service.py``: a real service on an
ephemeral port, raw HTTP in/out, so write admission, validation, and
the visibility of applied updates to subsequent queries are exercised
exactly as a client sees them.
"""

import asyncio
import json

import numpy as np
import pytest

from repro.core.session import QuerySession, ShardedSession
from repro.live import LiveIndex, ShardedLiveIndex
from repro.serve.loadgen import _read_response
from repro.serve.service import QueryService, ServiceConfig
from repro.serve.shedding import ShedConfig
from repro.storage.index_builder import build_index

TERMS = ["t0", "t1"]
BLOCK = 16

NO_SHED = ShedConfig(
    enter_degrade=50.0, exit_degrade=25.0,
    enter_reject=100.0, exit_reject=50.0,
)


async def raw_request(port, data: bytes):
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    writer.write(data)
    await writer.drain()
    status, headers, body = await _read_response(reader)
    writer.close()
    try:
        await writer.wait_closed()
    except (ConnectionError, OSError):
        pass
    return status, headers, json.loads(body.decode())


async def request(port, payload=None, method="POST", path="/update"):
    body = json.dumps(payload).encode() if payload is not None else b""
    head = (
        "%s %s HTTP/1.1\r\nHost: t\r\nContent-Length: %d\r\n"
        "Connection: close\r\n\r\n" % (method, path, len(body))
    )
    return await raw_request(port, head.encode() + body)


def serve(session, config, interact):
    async def go():
        async with QueryService(session, config) as service:
            return await interact(service)

    return asyncio.run(go())


def _base():
    rng = np.random.default_rng(21)
    postings = {
        t: [(d, round(float(rng.random()), 6)) for d in range(80)]
        for t in TERMS
    }
    return build_index(postings, block_size=BLOCK)


@pytest.fixture()
def binding():
    live = LiveIndex(_base(), block_size=BLOCK)
    handle = QuerySession(cost_ratio=100.0).open_live(live)
    yield handle
    handle.close()


class TestUpdatePath:
    def test_update_roundtrip_visible_to_queries(self, binding):
        async def interact(service):
            status, _h, body = await request(service.port, {
                "ops": [
                    {"op": "upsert", "doc_id": 900,
                     "terms": {"t0": 7.0, "t1": 7.0}},
                    {"op": "delete", "doc_id": 0},
                ]
            })
            assert status == 200
            assert body["applied"] == 2
            assert body["epoch"] == 2
            assert body["service"]["cost_class"] == "light"
            status, _h, result = await request(
                service.port, {"terms": TERMS, "k": 3}, path="/query"
            )
            assert status == 200
            assert result["items"][0]["doc_id"] == 900
            assert all(i["doc_id"] != 0 for i in result["items"])

        serve(binding, ServiceConfig(shed=NO_SHED), interact)

    def test_update_metrics_and_live_block(self, binding):
        async def interact(service):
            await request(service.port, {
                "ops": [{"op": "upsert", "doc_id": 1,
                         "terms": {"t0": 0.5}}]
            })
            status, _h, metrics = await request(
                service.port, method="GET", path="/metrics"
            )
            assert status == 200
            assert metrics["service"]["updates"] == 1
            assert metrics["service"]["update_ops_applied"] == 1
            assert metrics["live"]["updates_applied"] == 1
            assert metrics["live"]["epoch"] == 1

        serve(binding, ServiceConfig(shed=NO_SHED), interact)

    def test_validation_failures_are_400(self, binding):
        cases = [
            None,
            {"ops": []},
            {"ops": "nope"},
            {"ops": [{"op": "replace", "doc_id": 1}]},
            {"ops": [{"op": "upsert", "doc_id": 1, "terms": {}}]},
            {"ops": [{"op": "upsert", "doc_id": 1, "terms": {"a": -1}}]},
            {"ops": [{"op": "upsert", "doc_id": "x", "terms": {"a": 1}}]},
            {"ops": [{"op": "delete", "doc_id": 1, "terms": {"a": 1}}]},
        ]

        async def interact(service):
            for payload in cases:
                status, _h, body = await request(service.port, payload)
                assert status == 400, payload
                assert body["error"]["code"] in (
                    "invalid_json", "invalid_update"
                ), payload
            # nothing was applied by any rejected batch
            status, _h, metrics = await request(
                service.port, method="GET", path="/metrics"
            )
            assert metrics["live"]["updates_applied"] == 0

        serve(binding, ServiceConfig(shed=NO_SHED), interact)

    def test_oversized_batch_is_400(self, binding):
        async def interact(service):
            ops = [{"op": "delete", "doc_id": d} for d in range(5)]
            status, _h, body = await request(service.port, {"ops": ops})
            assert status == 400
            assert "too many ops" in body["error"]["message"]

        serve(binding, ServiceConfig(shed=NO_SHED, max_update_ops=4),
              interact)

    def test_non_live_session_is_501(self):
        session = QuerySession(_base(), cost_ratio=100.0)

        async def interact(service):
            status, _h, body = await request(
                service.port, {"ops": [{"op": "delete", "doc_id": 1}]}
            )
            assert status == 501
            assert body["error"]["code"] == "not_supported"

        serve(session, ServiceConfig(shed=NO_SHED), interact)

    def test_get_update_is_405(self, binding):
        async def interact(service):
            status, _h, _b = await request(service.port, method="GET")
            assert status == 405

        serve(binding, ServiceConfig(shed=NO_SHED), interact)

    def test_update_cost_classing(self, binding):
        """A large batch classes heavy via update_cost_weight."""

        async def interact(service):
            status, _h, body = await request(service.port, {
                "ops": [
                    {"op": "upsert", "doc_id": d,
                     "terms": {"t0": 0.1, "t1": 0.2}}
                    for d in range(10)
                ]
            })
            assert status == 200
            assert body["service"]["cost_class"] == "heavy"

        config = ServiceConfig(
            shed=NO_SHED, update_cost_weight=8.0, heavy_cost_threshold=100.0
        )
        serve(binding, config, interact)

    def test_degrade_level_rejects_heavy_writes(self, binding):
        """Where queries get tightened, heavy write batches get a 429."""

        async def interact(service):
            # pin the pressure gauge inside the degrade band
            service.admission.pressure = lambda: 10.0
            status, _h, body = await request(service.port, {
                "ops": [
                    {"op": "upsert", "doc_id": d,
                     "terms": {"t0": 0.1, "t1": 0.2}}
                    for d in range(10)
                ]
            })
            assert status == 429
            assert body["error"]["details"]["cost_class"] == "heavy"
            # a light write still lands
            status, _h, body = await request(service.port, {
                "ops": [{"op": "delete", "doc_id": 1}]
            })
            assert status == 200

        config = ServiceConfig(
            shed=ShedConfig(enter_degrade=5.0, exit_degrade=2.0,
                            enter_reject=50.0, exit_reject=25.0),
            update_cost_weight=8.0,
            heavy_cost_threshold=100.0,
        )
        serve(binding, config, interact)

    def test_sharded_live_service(self):
        sharded = ShardedLiveIndex(_base(), num_shards=2, block_size=BLOCK)
        session = ShardedSession(live=sharded, cost_ratio=100.0)

        async def interact(service):
            status, _h, body = await request(service.port, {
                "ops": [{"op": "upsert", "doc_id": 700,
                         "terms": {"t0": 9.0, "t1": 9.0}}]
            })
            assert status == 200 and body["applied"] == 1
            status, _h, result = await request(
                service.port, {"terms": TERMS, "k": 2}, path="/query"
            )
            assert status == 200
            assert result["items"][0]["doc_id"] == 700
            status, _h, metrics = await request(
                service.port, method="GET", path="/metrics"
            )
            assert metrics["live"]["num_shards"] == 2

        try:
            serve(session, ServiceConfig(shed=NO_SHED), interact)
        finally:
            session.close()
