"""Sharded live indexes: routed writes, consistent cuts, session parity.

The invariant chain: a sharded live session over N shards must return
exactly what a single-node live index returns, which in turn (by the
differential harness) equals a from-scratch rebuild.  So the same op
stream is driven into all three and the query fingerprints compared.
"""

import numpy as np
import pytest

from repro.core.session import QuerySession, ShardedSession
from repro.live import LiveIndex, ShardedLiveIndex
from repro.storage.index_builder import build_index

TERMS = ["t0", "t1", "t2"]
BLOCK = 16
K = 5


def _base(seed=13, num_docs=250):
    rng = np.random.default_rng(seed)
    postings = {t: [] for t in TERMS}
    model = {}
    for doc in range(num_docs):
        version = {
            t: round(float(rng.random()), 6)
            for t in TERMS if rng.random() < 0.8
        }
        if not version:
            continue
        model[doc] = version
        for t, s in version.items():
            postings[t].append((doc, s))
    return build_index(postings, block_size=BLOCK), model


def _drive(rng, targets, model, count):
    for _ in range(count):
        doc = int(rng.integers(0, 320))
        if rng.random() < 0.65:
            version = {
                t: round(float(rng.random()), 6)
                for t in TERMS if rng.random() < 0.8
            } or {"t1": 0.5}
            for target in targets:
                target.upsert(doc, version)
            model[doc] = version
        else:
            for target in targets:
                target.delete(doc)
            model.pop(doc, None)


@pytest.mark.parametrize("strategy", ["hash", "round-robin"])
@pytest.mark.parametrize("num_shards", [1, 3])
def test_sharded_live_matches_single_live_and_rebuild(strategy, num_shards):
    base, model = _base()
    sharded = ShardedLiveIndex(
        base, num_shards=num_shards, strategy=strategy, block_size=BLOCK
    )
    single = LiveIndex(base, block_size=BLOCK)
    rng = np.random.default_rng(31)

    sharded_session = ShardedSession(live=sharded, cost_ratio=100.0)
    plain = QuerySession(cost_ratio=100.0)
    try:
        for phase in range(3):
            _drive(rng, [sharded, single], model, 40)
            if phase == 1:  # mix in maintenance mid-stream
                for shard in sharded.shards:
                    shard.seal()
                single.seal()
            if phase == 2:
                for shard in sharded.shards:
                    shard.compact(force=True)
                single.compact(force=True)

            postings = {t: [] for t in TERMS}
            for doc, version in model.items():
                for t, s in version.items():
                    postings[t].append((doc, s))
            rebuilt = build_index(postings, block_size=BLOCK)

            got = sharded_session.run(TERMS, K)
            with single.snapshot() as snap:
                mid = plain.run(TERMS, K, index=snap.index)
            want = plain.run(TERMS, K, index=rebuilt)
            def fingerprint(r):
                return [
                    (i.doc_id, i.worstscore, i.bestscore) for i in r.items
                ]
            # single-node live is *bitwise* identical to the rebuild...
            assert fingerprint(mid) == fingerprint(want), (phase, strategy)
            # ...while the coordinator legitimately sums per-doc scores
            # in a different discovery order, so floats compare approx
            # (same tolerance as the coordinator parity suite)
            assert [i.doc_id for i in got.items] == [
                i.doc_id for i in want.items
            ], (phase, strategy)
            for left, right in zip(got.items, want.items):
                assert left.worstscore == pytest.approx(
                    right.worstscore, abs=1e-9
                )
    finally:
        sharded_session.close()
        single.close()


def test_apply_batch_is_one_consistent_cut():
    base, _model = _base()
    sharded = ShardedLiveIndex(base, num_shards=3, block_size=BLOCK)
    session = ShardedSession(live=sharded, cost_ratio=100.0)
    try:
        # two sentinel docs that land on different shards, written in
        # one batch: a query sees both or neither
        applied = sharded.apply([
            ("upsert", 9001, {"t0": 9.0, "t1": 9.0, "t2": 9.0}),
            ("upsert", 9002, {"t0": 8.9, "t1": 8.9, "t2": 8.9}),
        ])
        assert applied == 2
        result = session.run(TERMS, 2)
        assert [i.doc_id for i in result.items] == [9001, 9002]
    finally:
        session.close()


def test_round_robin_allocates_and_remembers_new_docs():
    sharded = ShardedLiveIndex(num_shards=3, strategy="round-robin",
                               block_size=BLOCK)
    homes = {}
    for doc in range(9):
        sharded.upsert(doc, {"t0": 0.5})
        homes[doc] = sharded.shard_of(doc, create=False)
    assert sorted(set(homes.values())) == [0, 1, 2]
    # re-upsert goes to the remembered home, not a new allocation
    sharded.upsert(0, {"t0": 0.9})
    assert sharded.shard_of(0, create=False) == homes[0]
    # deleting a never-seen doc under round-robin is unroutable
    assert sharded.delete(12345) is False
    sharded.close()


def test_epoch_refresh_reuses_unchanged_shard_snapshots():
    base, _model = _base()
    sharded = ShardedLiveIndex(base, num_shards=2, strategy="hash",
                               block_size=BLOCK)
    session = ShardedSession(live=sharded, cost_ratio=100.0)
    try:
        session.run(TERMS, K)
        before = session._live_snaps
        # route one write to exactly one shard
        target = sharded.shard_of(0, create=True)
        sharded.upsert(0, {"t0": 0.123})
        session.run(TERMS, K)
        after = session._live_snaps
        for shard_id, (old, new) in enumerate(zip(before, after)):
            if shard_id == target:
                assert old is not new
            else:
                assert old is new  # untouched shard: stats cache stays warm
    finally:
        session.close()


def test_sharded_session_rejects_bad_live_configs():
    base, _model = _base()
    sharded = ShardedLiveIndex(base, num_shards=2, block_size=BLOCK)
    with pytest.raises(ValueError):
        ShardedSession(live=sharded, backend="process")
    with pytest.raises(ValueError):
        ShardedSession(live=sharded, index=base)
    with pytest.raises(TypeError):
        ShardedSession(live=LiveIndex(base))
    sharded.close()


def test_warm_builds_stats_for_every_shard():
    base, _model = _base()
    sharded = ShardedLiveIndex(base, num_shards=2, block_size=BLOCK)
    session = ShardedSession(live=sharded, cost_ratio=100.0)
    try:
        session.warm()
        builds = session.session.stats_builds
        assert builds >= 2
        session.run(TERMS, K)
        assert session.session.stats_builds == builds  # warm() did the work
    finally:
        session.close()
