"""Unit pins for snapshot identity, sharing, and lifecycle."""

import numpy as np
import pytest

from repro.live import LiveIndex
from repro.storage.index_builder import build_index

TERMS = ["a", "b"]
BLOCK = 8


def _base():
    postings = {
        "a": [(d, 0.9 - d * 0.01) for d in range(20)],
        "b": [(d, 0.8 - d * 0.01) for d in range(10)],
    }
    return build_index(postings, block_size=BLOCK)


def test_untouched_lists_are_shared_zero_copy():
    """A term with no delta postings and no shadowed doc reuses the
    base ``IndexList`` object outright — no rebuild, no copy."""
    base = _base()
    with LiveIndex(base, block_size=BLOCK) as live:
        live.upsert(100, {"a": 0.95})  # touches 'a' only
        with live.snapshot() as snap:
            assert snap.index.list_for("b") is base.list_for("b")
            assert snap.index.list_for("a") is not base.list_for("a")


def test_shadowed_doc_breaks_sharing_only_where_it_appears():
    base = _base()
    with LiveIndex(base, block_size=BLOCK) as live:
        live.delete(15)  # doc 15 has an 'a' posting but no 'b' posting
        with live.snapshot() as snap:
            assert snap.index.list_for("b") is base.list_for("b")
            docs = snap.index.list_for("a").doc_ids_by_rank.tolist()
            assert 15 not in docs and len(docs) == 19


def test_snapshot_num_docs_matches_build_index_semantics():
    base = _base()
    with LiveIndex(base, block_size=BLOCK) as live:
        with live.snapshot() as snap:
            assert snap.index.num_docs == base.num_docs == 20
        live.upsert(50, {"b": 0.5})
        with live.snapshot() as snap:
            assert snap.index.num_docs == 21
        live.delete(0)
        with live.snapshot() as snap:
            assert snap.index.num_docs == 20


def test_collection_size_floors_num_docs():
    base = _base()
    with LiveIndex(base, block_size=BLOCK, collection_size=500) as live:
        with live.snapshot() as snap:
            assert snap.index.num_docs == 500
        live.upsert(1000, {"a": 0.1})
        with live.snapshot() as snap:
            assert snap.index.num_docs == 500


def test_refcounts_and_deferred_release(tmp_path):
    live = LiveIndex(_base(), block_size=BLOCK, spill_dir=tmp_path)
    live.upsert(30, {"a": 0.5})
    assert live.seal()
    snap = live.snapshot()
    again = live.snapshot()
    assert snap is again  # same epoch: one object, two handles
    snap.close()
    live.upsert(31, {"b": 0.6})  # epoch advance drops the cache handle
    again.close()
    with pytest.raises(RuntimeError):
        snap.acquire()  # fully released snapshots cannot be revived
    live.close()


def test_close_is_idempotent_and_index_survives():
    live = LiveIndex(_base(), block_size=BLOCK)
    live.upsert(1, {"a": 0.99})
    live.close()
    live.close()
    with live.snapshot() as snap:  # closing releases caches, not data
        assert snap.index.list_for("a").doc_ids_by_rank[0] == 1
    live.close()


def test_new_terms_enter_vocabulary_sorted_after_base():
    base = _base()
    with LiveIndex(base, block_size=BLOCK) as live:
        live.upsert(1, {"z": 0.5, "c": 0.4, "a": 0.3})
        with live.snapshot() as snap:
            assert snap.index.terms == ["a", "b", "c", "z"]
            rebuilt = build_index(
                {
                    "a": list(zip(
                        snap.index.list_for("a").doc_ids_by_rank.tolist(),
                        snap.index.list_for("a").scores_by_rank.tolist(),
                    )),
                    "b": list(zip(
                        snap.index.list_for("b").doc_ids_by_rank.tolist(),
                        snap.index.list_for("b").scores_by_rank.tolist(),
                    )),
                    "c": [(1, 0.4)],
                    "z": [(1, 0.5)],
                },
                block_size=BLOCK,
            )
            for term in snap.index.terms:
                assert np.array_equal(
                    snap.index.list_for(term).doc_ids_by_rank,
                    rebuilt.list_for(term).doc_ids_by_rank,
                )


def test_materialization_is_lazy_and_cached():
    base = _base()
    with LiveIndex(base, block_size=BLOCK) as live:
        live.upsert(40, {"a": 0.7})
        with live.snapshot() as snap:
            first = snap.index.list_for("a")
            assert snap.index.list_for("a") is first  # cached


def test_segment_stack_preserves_order_of_versions():
    """Newest layer wins: segment versions shadow base, delta shadows
    segments — even for the same doc rewritten at every layer."""
    base = _base()
    with LiveIndex(base, block_size=BLOCK) as live:
        live.upsert(3, {"a": 0.11})
        assert live.seal()
        live.upsert(3, {"a": 0.22})
        assert live.seal()
        live.upsert(3, {"a": 0.33})  # delta
        with live.snapshot() as snap:
            lst = snap.index.list_for("a")
            pos = lst.doc_ids_by_rank.tolist().index(3)
            assert lst.scores_by_rank[pos] == pytest.approx(0.33)
        assert live.compact(force=True)
        with live.snapshot() as snap:
            lst = snap.index.list_for("a")
            pos = lst.doc_ids_by_rank.tolist().index(3)
            assert lst.scores_by_rank[pos] == pytest.approx(0.33)
