"""Validity and behaviour tests for the Sec. 2.5 lower bound."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.algorithms import TopKProcessor
from repro.core.lower_bound import LowerBoundComputer
from repro.storage.index_builder import build_index

from tests.helpers import make_random_index

CHECK_ALGORITHMS = ["NRA", "CA", "RR-Last-Best", "KSR-Last-Ben",
                    "KBA-Last-Ben", "Pick"]


class TestValidity:
    @pytest.mark.parametrize("distribution", ["uniform", "zipf", "ties"])
    @pytest.mark.parametrize("k", [1, 5, 25])
    def test_bound_below_every_algorithm(self, distribution, k):
        index, terms = make_random_index(
            num_lists=3, list_length=400, num_docs=1200,
            distribution=distribution, seed=23,
        )
        computer = LowerBoundComputer(index, terms)
        for ratio in (10.0, 1000.0):
            bound = computer.cost_for_k(k, ratio)
            processor = TopKProcessor(index, cost_ratio=ratio)
            for algorithm in CHECK_ALGORITHMS:
                cost = processor.query(terms, k, algorithm=algorithm).stats.cost
                assert bound <= cost + 1e-6, (
                    "LB %.1f exceeds %s cost %.1f (ratio %s, k %d)"
                    % (bound, algorithm, cost, ratio, k)
                )

    def test_bound_below_full_merge(self, small_index):
        index, terms = small_index
        computer = LowerBoundComputer(index, terms)
        volume = sum(len(index.list_for(t)) for t in terms)
        assert computer.cost_for_k(10, 1000.0) <= volume

    def test_coarse_grids_only_lower_the_bound(self, small_index):
        index, terms = small_index
        fine = LowerBoundComputer(index, terms, max_combinations=6000)
        coarse = LowerBoundComputer(index, terms, max_combinations=8)
        assert (
            coarse.cost_for_k(5, 100.0) <= fine.cost_for_k(5, 100.0) + 1e-6
        )


class TestBehaviour:
    def test_caching(self, small_index):
        index, terms = small_index
        computer = LowerBoundComputer(index, terms)
        first = computer.cost_for_k(5, 100.0)
        assert computer.cost_for_k(5, 100.0) == first

    def test_grows_with_k(self, small_index):
        index, terms = small_index
        computer = LowerBoundComputer(index, terms)
        values = [computer.cost_for_k(k, 1000.0) for k in (1, 5, 20)]
        assert values[0] <= values[1] <= values[2]

    def test_rejects_bad_k(self, small_index):
        index, terms = small_index
        computer = LowerBoundComputer(index, terms)
        with pytest.raises(ValueError):
            computer.cost_for_k(0, 100.0)

    def test_rejects_bad_grid(self, small_index):
        index, terms = small_index
        with pytest.raises(ValueError):
            LowerBoundComputer(index, terms, max_depths_per_list=1)

    def test_many_lists_use_budgeted_cells(self):
        index, terms = make_random_index(
            num_lists=4, list_length=100, num_docs=500, seed=31,
            block_size=16,
        )
        computer = LowerBoundComputer(index, terms, max_combinations=50)
        groups = computer._cell_groups()
        product = 1
        for group in groups:
            product *= len(group)
        assert product <= 50
        # Groups partition each list's cell range.
        for i, group in enumerate(groups):
            assert group[0][0] == 0
            assert group[-1][1] == len(computer.shallow_depths[i]) - 1
            for (_, hi), (lo2, _) in zip(group, group[1:]):
                assert lo2 == hi + 1


@settings(max_examples=15, deadline=None)
@given(data=st.data(), k=st.integers(min_value=1, max_value=6))
def test_lower_bound_validity_property(data, k):
    """Property: the bound never exceeds a real algorithm's cost."""
    num_lists = data.draw(st.integers(min_value=1, max_value=3))
    postings = {}
    terms = []
    for i in range(num_lists):
        term = "t%d" % i
        terms.append(term)
        docs = data.draw(
            st.lists(
                st.integers(min_value=0, max_value=60),
                min_size=2, max_size=40, unique=True,
            ),
            label="docs%d" % i,
        )
        scores = data.draw(
            st.lists(
                st.floats(min_value=1e-6, max_value=1.0, allow_nan=False),
                min_size=len(docs), max_size=len(docs),
            ),
            label="scores%d" % i,
        )
        postings[term] = list(zip(docs, scores))
    index = build_index(postings, num_docs=80, block_size=8)
    ratio = data.draw(st.sampled_from([1.0, 20.0, 500.0]), label="ratio")
    algorithm = data.draw(st.sampled_from(CHECK_ALGORITHMS), label="algo")
    bound = LowerBoundComputer(index, terms).cost_for_k(k, ratio)
    processor = TopKProcessor(index, cost_ratio=ratio)
    cost = processor.query(terms, k, algorithm=algorithm).stats.cost
    assert bound <= cost + 1e-6
