"""Unit tests for the Normal-approximation predictor (RankSQL baseline)."""

import numpy as np
import pytest

from repro.core.algorithms import TopKProcessor
from repro.stats.histogram import ScoreHistogram
from repro.stats.normal_predictor import NormalScorePredictor, _normal_sf
from repro.stats.score_predictor import ScorePredictor

from tests.helpers import make_random_index, oracle_scores, true_score


def make_predictor(score_sets, cls=NormalScorePredictor, num_docs=1000):
    histograms = [ScoreHistogram(np.array(s)) for s in score_sets]
    return cls(histograms, [len(s) for s in score_sets], num_docs=num_docs)


class TestNormalSf:
    def test_symmetry(self):
        assert _normal_sf(0.0) == pytest.approx(0.5)
        assert _normal_sf(1.0) + _normal_sf(-1.0) == pytest.approx(1.0)

    def test_tails(self):
        assert _normal_sf(6.0) < 1e-8
        assert _normal_sf(-6.0) > 1 - 1e-8


class TestNormalPredictor:
    def test_interface_matches_histogram_predictor(self):
        rng = np.random.default_rng(0)
        scores = [rng.random(500), rng.random(500)]
        normal = make_predictor(scores)
        for delta in (-0.5, 0.3, 1.0, 2.5):
            p = normal.score_exceedance(0b11, delta)
            assert 0.0 <= p <= 1.0
        assert normal.score_exceedance(0b11, -0.1) == 1.0
        assert normal.score_exceedance(0, 0.5) == 0.0

    def test_agrees_with_histograms_on_gaussianish_sums(self):
        # Summing several uniform components is near-Gaussian (CLT): the
        # two predictors should agree closely there.
        rng = np.random.default_rng(1)
        scores = [rng.random(2000) for _ in range(4)]
        normal = make_predictor(scores)
        hist = make_predictor(scores, cls=ScorePredictor)
        for delta in (1.0, 2.0, 3.0):
            assert normal.score_exceedance(0b1111, delta) == pytest.approx(
                hist.score_exceedance(0b1111, delta), abs=0.05
            )

    def test_diverges_on_skewed_single_list(self):
        # A heavily skewed single list is exactly where the Normal
        # assumption breaks (the paper's argument).
        scores = np.power(np.arange(1, 2001, dtype=float), -1.2)
        normal = make_predictor([list(scores)])
        hist = make_predictor([list(scores)], cls=ScorePredictor)
        threshold = float(np.quantile(scores, 0.99))
        exact = float((scores > threshold).mean())
        hist_error = abs(hist.score_exceedance(0b1, threshold) - exact)
        normal_error = abs(normal.score_exceedance(0b1, threshold) - exact)
        assert hist_error < normal_error

    def test_exhausted_lists_degenerate_cleanly(self):
        normal = make_predictor([[0.5, 0.4]])
        normal.refresh([2])
        assert normal.score_exceedance(0b1, 0.1) == 0.0
        assert normal.score_exceedance(0b1, -0.1) == 1.0


class TestEndToEnd:
    @pytest.mark.parametrize("algorithm", ["RR-Last-Ben", "KBA-Last-Ben"])
    def test_normal_predictor_still_exact(self, algorithm):
        # The predictor only influences *scheduling*; results must stay
        # correct under either choice.
        index, terms = make_random_index(seed=61)
        processor = TopKProcessor(index, cost_ratio=100, predictor="normal")
        result = processor.query(terms, 10, algorithm=algorithm)
        expected = oracle_scores(index, terms, 10)
        got = sorted(
            (true_score(index, terms, d) for d in result.doc_ids),
            reverse=True,
        )
        assert np.allclose(got, expected, atol=1e-6)

    def test_unknown_predictor_rejected(self, small_index):
        index, _ = small_index
        with pytest.raises(ValueError):
            TopKProcessor(index, predictor="cauchy")
