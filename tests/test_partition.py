"""Document partitioning: assignment, shard construction, invariants."""

import pytest

from repro.distrib.partition import (
    ShardedIndex,
    assign_documents,
    hash_shard,
    partition_index,
    partition_postings,
)
from repro.storage.index_builder import build_index, build_index_shards
from tests.helpers import make_random_index


def small_postings():
    return {
        "a": [(1, 0.9), (2, 0.3), (5, 0.7), (8, 0.2)],
        "b": [(2, 0.8), (3, 0.5), (8, 0.9)],
    }


class TestAssignment:
    def test_hash_is_deterministic_and_in_range(self):
        for doc in range(200):
            first = hash_shard(doc, 4)
            assert 0 <= first < 4
            assert hash_shard(doc, 4) == first

    def test_hash_spreads_sequential_ids(self):
        counts = [0] * 4
        for doc in range(1000):
            counts[hash_shard(doc, 4)] += 1
        # splitmix64 mixing keeps sequential ids roughly uniform
        assert min(counts) > 150

    def test_round_robin_is_exactly_balanced(self):
        assignment = assign_documents(range(103), 4, "round-robin")
        counts = [0] * 4
        for shard in assignment.values():
            counts[shard] += 1
        assert max(counts) - min(counts) <= 1

    def test_round_robin_ignores_input_order(self):
        forward = assign_documents([1, 2, 3, 4], 2, "round-robin")
        backward = assign_documents([4, 3, 2, 1], 2, "round-robin")
        assert forward == backward

    def test_rejects_bad_arguments(self):
        with pytest.raises(ValueError):
            assign_documents([1], 0, "hash")
        with pytest.raises(ValueError):
            assign_documents([1], 2, "range")


class TestPartitionPostings:
    def test_doc_ids_stay_global_and_disjoint(self):
        sharded = partition_postings(small_postings(), 2, strategy="hash")
        seen = {}
        for sid, shard in enumerate(sharded):
            for term in shard.terms:
                lst = shard.list_for(term)
                for doc in lst.doc_ids_by_rank.tolist():
                    home = seen.setdefault(int(doc), sid)
                    # document partitioning: every doc in one shard only
                    assert home == sid

    def test_every_term_in_every_shard(self):
        # a shard may hold no postings for a term, but the list exists —
        # per-shard executors must never KeyError on a query term
        sharded = partition_postings(small_postings(), 4, strategy="hash")
        for shard in sharded:
            assert sorted(shard.terms) == ["a", "b"]

    def test_num_docs_is_distributed_not_duplicated(self):
        sharded = partition_postings(
            small_postings(), 2, strategy="round-robin", num_docs=100
        )
        assert sharded.num_docs == 100

    def test_shard_of_round_robin_rejects_unknown(self):
        sharded = partition_postings(
            small_postings(), 2, strategy="round-robin"
        )
        assert sharded.shard_of(2) in (0, 1)
        with pytest.raises(KeyError):
            sharded.shard_of(999)

    def test_shard_of_hash_answers_for_any_id(self):
        sharded = partition_postings(small_postings(), 2, strategy="hash")
        assert 0 <= sharded.shard_of(424242) < 2


class TestPartitionIndex:
    def test_round_trip_preserves_postings(self):
        index, terms = make_random_index(seed=7, list_length=120)
        sharded = partition_index(index, 3, strategy="round-robin")
        assert isinstance(sharded, ShardedIndex)
        assert len(sharded) == 3
        for term in terms:
            source = dict(
                zip(
                    index.list_for(term).doc_ids_by_rank.tolist(),
                    index.list_for(term).scores_by_rank.tolist(),
                )
            )
            rebuilt = {}
            for shard in sharded:
                lst = shard.list_for(term)
                rebuilt.update(
                    zip(
                        lst.doc_ids_by_rank.tolist(),
                        lst.scores_by_rank.tolist(),
                    )
                )
            assert rebuilt == source

    def test_total_num_docs_preserved(self):
        index, _ = make_random_index(seed=7)
        sharded = partition_index(index, 7, strategy="hash")
        assert sharded.num_docs == index.num_docs


class TestBuildIndexShards:
    def test_assignment_must_cover_all_docs(self):
        with pytest.raises(ValueError):
            build_index_shards(small_postings(), {1: 0}, 2)

    def test_assignment_must_stay_in_range(self):
        postings = {"a": [(1, 0.5)]}
        with pytest.raises(ValueError):
            build_index_shards(postings, {1: 5}, 2)

    def test_shards_are_plain_indexes(self):
        postings = small_postings()
        assignment = assign_documents(
            {d for lst in postings.values() for d, _ in lst},
            2,
            "round-robin",
        )
        shards = build_index_shards(postings, assignment, 2)
        reference = build_index(postings)
        assert len(shards) == 2
        assert sum(s.num_docs for s in shards) == reference.num_docs
