"""Planner layer: QueryPlan validation, factories, and plan() resolution."""

import dataclasses

import pytest

from repro.core.algorithms import plan
from repro.core.executor import QueryDeadline
from repro.core.planner import QueryPlan
from repro.core.ra.simple import AllProbe, NeverProbe
from repro.core.sa.round_robin import RoundRobin
from repro.stats.threshold import PredictedThreshold
from repro.storage.diskmodel import CostModel


class TestValidation:
    def test_empty_terms_rejected(self):
        with pytest.raises(ValueError, match="at least one term"):
            QueryPlan(algorithm="RR-Never", terms=(), k=10)

    @pytest.mark.parametrize("k", [0, -1, -50])
    def test_nonpositive_k_rejected(self, k):
        with pytest.raises(ValueError, match="k must be positive"):
            QueryPlan(algorithm="RR-Never", terms=("a",), k=k)

    def test_weight_arity_mismatch_rejected(self):
        with pytest.raises(ValueError, match="weights must match"):
            QueryPlan(
                algorithm="RR-Never", terms=("a", "b"), k=1, weights=(1.0,)
            )

    def test_nonpositive_weights_rejected(self):
        with pytest.raises(ValueError, match="weights must be positive"):
            QueryPlan(
                algorithm="RR-Never", terms=("a", "b"), k=1,
                weights=(1.0, -2.0),
            )

    def test_negative_prune_epsilon_rejected(self):
        with pytest.raises(ValueError, match="prune_epsilon"):
            QueryPlan(
                algorithm="RR-Never", terms=("a",), k=1, prune_epsilon=-0.1
            )

    def test_plan_function_validates_too(self):
        with pytest.raises(ValueError, match="k must be positive"):
            plan(["a"], 0)
        with pytest.raises(ValueError, match="at least one term"):
            plan([], 5)


class TestImmutability:
    def test_plan_is_frozen(self):
        p = plan(["a", "b"], 5)
        with pytest.raises(dataclasses.FrozenInstanceError):
            p.k = 7

    def test_replace_returns_new_plan(self):
        p = plan(["a", "b"], 5, "NRA")
        q = p.replace(k=7)
        assert q.k == 7 and p.k == 5
        assert q.terms == p.terms
        assert q.algorithm == p.algorithm

    def test_replace_revalidates(self):
        p = plan(["a"], 5)
        with pytest.raises(ValueError, match="k must be positive"):
            p.replace(k=0)


class TestResolution:
    def test_plan_resolves_aliases(self):
        assert plan(["a"], 1, "TA").algorithm == "RR-All"
        assert plan(["a"], 1, "NRA").algorithm == "RR-Never"
        assert plan(["a"], 1, "nra").algorithm == "RR-Never"

    def test_plan_rejects_unknown_algorithm(self):
        with pytest.raises(ValueError, match="unknown algorithm"):
            plan(["a"], 1, "RR-Bogus")

    def test_plan_normalizes_shapes(self):
        p = plan(["a", "b"], 3, weights=[2, 1])
        assert p.terms == ("a", "b")
        assert p.weights == (2.0, 1.0)
        assert isinstance(p.weights[0], float)
        assert p.num_lists == 2

    def test_plan_carries_execution_environment(self):
        model = CostModel.from_ratio(50.0)
        deadline = QueryDeadline(cost_budget=100.0)
        p = plan(
            ["a"], 1, "TA", prune_epsilon=0.05, deadline=deadline,
            cost_model=model, batch_blocks=2,
        )
        assert p.cost_model is model
        assert p.deadline is deadline
        assert p.prune_epsilon == 0.05
        assert p.batch_blocks == 2


class TestPolicyFactories:
    def test_make_policies_returns_fresh_instances(self):
        p = plan(["a"], 1, "RR-All")
        sa1, ra1 = p.make_policies()
        sa2, ra2 = p.make_policies()
        assert isinstance(sa1, RoundRobin)
        assert isinstance(ra1, AllProbe)
        assert sa1 is not sa2
        assert ra1 is not ra2

    def test_plan_without_factories_resolves_via_registry(self):
        p = QueryPlan(algorithm="RR-Never", terms=("a",), k=1)
        assert p.sa_factory is None and p.ra_factory is None
        sa, ra = p.make_policies()
        assert isinstance(sa, RoundRobin)
        assert isinstance(ra, NeverProbe)

    def test_factories_excluded_from_equality(self):
        p = plan(["a"], 1, "NRA")
        q = QueryPlan(algorithm="RR-Never", terms=("a",), k=1)
        assert p == q


class TestEqualityAndHash:
    """Plan identity audit: every semantic field participates in eq/hash
    (a cache keyed on plans must never conflate distinct queries), and
    ``replace`` round-trips losslessly."""

    def test_replace_roundtrip_is_identity(self):
        pt = PredictedThreshold(value=0.7, method="auto", raw=0.8,
                                safety=0.9)
        p = plan(
            ["a", "b"], 5, "CA", weights=[2, 1], prune_epsilon=0.05,
            predicted_threshold=pt,
        )
        q = p.replace()
        assert q == p
        assert hash(q) == hash(p)
        assert q.predicted_threshold == pt

    @pytest.mark.parametrize(
        "field,value",
        [
            ("k", 7),
            ("algorithm", "RR-All"),
            ("terms", ("a", "c")),
            ("weights", (3.0, 1.0)),
            ("prune_epsilon", 0.2),
            (
                "predicted_threshold",
                PredictedThreshold(value=0.5),
            ),
        ],
    )
    def test_every_semantic_field_changes_identity(self, field, value):
        base = plan(["a", "b"], 5, "CA", weights=[2.0, 1.0])
        changed = base.replace(**{field: value})
        assert changed != base
        assert hash(changed) != hash(base)

    def test_prediction_participates_in_equality(self):
        base = plan(["a"], 3)
        pt = PredictedThreshold(value=0.4, method="quantile", raw=0.4)
        with_pt = base.replace(predicted_threshold=pt)
        same_pt = base.replace(
            predicted_threshold=PredictedThreshold(
                value=0.4, method="quantile", raw=0.4
            )
        )
        assert with_pt != base
        assert with_pt == same_pt
        assert hash(with_pt) == hash(same_pt)
        # Dropping the prediction restores the original identity.
        assert with_pt.replace(predicted_threshold=None) == base

    def test_dataclasses_replace_agrees_with_method(self):
        pt = PredictedThreshold(value=0.4)
        p = plan(["a"], 3, predicted_threshold=pt)
        q = dataclasses.replace(p, k=4)
        assert q.predicted_threshold == pt
        assert q == p.replace(k=4)

    def test_plans_are_hash_stable_dict_keys(self):
        pt = PredictedThreshold(value=0.4)
        p1 = plan(["a"], 3, predicted_threshold=pt)
        p2 = plan(["a"], 3, predicted_threshold=pt)
        cache = {p1: "hit"}
        assert cache[p2] == "hit"
