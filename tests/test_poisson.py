"""Unit tests for the Poisson RA-count estimator (paper Sec. 5.1)."""

import numpy as np
import pytest
from scipy import stats

from repro.stats.poisson import (
    estimate_remaining_random_accesses,
    expected_lookup_documents,
    poisson_cdf,
)


class TestPoissonCdf:
    @pytest.mark.parametrize("k", [0, 1, 3, 10])
    @pytest.mark.parametrize("mean", [0.1, 1.0, 5.0, 20.0])
    def test_matches_scipy(self, k, mean):
        assert poisson_cdf(k, mean) == pytest.approx(
            stats.poisson.cdf(k, mean), abs=1e-10
        )

    def test_negative_k_is_zero(self):
        assert poisson_cdf(-1, 3.0) == 0.0

    def test_zero_mean_is_one(self):
        assert poisson_cdf(0, 0.0) == 1.0
        assert poisson_cdf(5, 0.0) == 1.0


class TestExpectedLookupDocuments:
    def test_empty_queue(self):
        result = expected_lookup_documents(
            np.array([]), np.array([]), np.array([1.0]), 0.5
        )
        assert result.size == 0

    def test_no_competitors_means_certain_lookup(self):
        # A single queued document with many top-k items below its
        # bestscore: nothing can block it, so a lookup is certain.
        result = expected_lookup_documents(
            bestscores=np.array([0.9]),
            exceed_mink_probs=np.array([0.5]),
            topk_worstscores=np.array([0.5] * 10),
            min_k=0.5,
        )
        assert result[0] == pytest.approx(1.0)

    def test_strong_competitors_reduce_expectation(self):
        # Document ranked last behind many near-certain competitors while
        # no top-k item sits below its bestscore.
        q = 30
        bestscores = np.linspace(2.0, 1.01, q)
        probs = np.full(q, 0.95)
        topk = np.full(10, 1.9)  # worstscores mostly above the low bests
        result = expected_lookup_documents(bestscores, probs, topk, 1.0)
        assert result[-1] < result[0]

    def test_results_are_probabilities(self):
        rng = np.random.default_rng(0)
        q = 50
        bestscores = 1.0 + rng.random(q)
        probs = rng.random(q)
        topk = 1.0 + rng.random(10)
        result = expected_lookup_documents(bestscores, probs, topk, 1.0)
        assert np.all(result >= 0.0) and np.all(result <= 1.0)

    def test_result_order_matches_input_order(self):
        # Shuffling the input order must permute the output identically.
        bestscores = np.array([1.5, 1.2, 1.8])
        probs = np.array([0.3, 0.2, 0.9])
        topk = np.array([1.0, 1.1])
        base = expected_lookup_documents(bestscores, probs, topk, 1.0)
        perm = [2, 0, 1]
        shuffled = expected_lookup_documents(
            bestscores[perm], probs[perm], topk, 1.0
        )
        assert np.allclose(shuffled, base[perm])

    def test_rejects_mismatched_arrays(self):
        with pytest.raises(ValueError):
            expected_lookup_documents(
                np.array([1.0]), np.array([]), np.array([1.0]), 0.5
            )


class TestEstimateRemainingRandomAccesses:
    def test_bounded_by_total_missing_dims(self):
        rng = np.random.default_rng(1)
        q = 40
        bestscores = 1.0 + rng.random(q)
        probs = rng.random(q)
        missing = rng.integers(1, 4, size=q)
        topk = 1.0 + rng.random(10)
        estimate = estimate_remaining_random_accesses(
            bestscores, probs, missing, topk, 1.0
        )
        assert 0.0 <= estimate <= float(missing.sum())

    def test_zero_for_empty_queue(self):
        estimate = estimate_remaining_random_accesses(
            np.array([]), np.array([]), np.array([]), np.array([1.0]), 0.5
        )
        assert estimate == 0.0

    def test_rejects_mismatched_missing(self):
        with pytest.raises(ValueError):
            estimate_remaining_random_accesses(
                np.array([1.0]), np.array([0.5]), np.array([1, 2]),
                np.array([1.0]), 0.5,
            )
