"""Cross-backend parity: process == thread == single-node, byte for byte.

The process backend changes *where* shard executions run (worker
processes over mmap'd on-disk shard files) but must change nothing
observable: a worker re-plans the same query from the same primitive
fields and runs the same executor code over the same bytes, and pickle
round-trips floats exactly.  This suite pins that claim — doc ids,
exact worstscore/bestscore intervals, #SA/#RA/COST, coordinator rounds,
and the prune/skip bookkeeping — for every canonical algorithm triple,
at shard counts 1/2/4/8, under both partitioning strategies, and under
both the ``fork`` and ``spawn`` start methods.

Cost control: worker processes are persistent, so one executor per
(start method, shard count, strategy) combination is spawned lazily and
reused across all 24 algorithms; the on-disk shard files are shared
between the fork and spawn executors of the same partitioning (also
pinning that the v3 files themselves are backend-agnostic).  Thread and
single-node reference results are computed once per combination.
"""

import multiprocessing

import pytest

from repro.core import available_algorithms
from repro.core.session import QuerySession
from repro.distrib import (
    MergeCoordinator,
    ProcessShardExecutor,
    ShardExecutor,
    partition_index,
)
from tests.helpers import COORDINATOR_K as K
from tests.helpers import make_random_index

ALGORITHMS = sorted(available_algorithms())
SHARD_COUNTS = (1, 2, 4, 8)
STRATEGIES = ("hash", "round-robin")
START_METHODS = tuple(
    method
    for method in ("fork", "spawn")
    if method in multiprocessing.get_all_start_methods()
)


def _fingerprint(result):
    """Everything parity promises, as one comparable value."""
    return {
        "doc_ids": result.doc_ids,
        "intervals": [
            (item.doc_id, item.worstscore, item.bestscore)
            for item in result.items
        ],
        "sorted_accesses": result.stats.sorted_accesses,
        "random_accesses": result.stats.random_accesses,
        "cost": result.stats.cost,
        "coordinator_rounds": result.coordinator_rounds,
        "pruned_shards": result.pruned_shards,
        "skipped_shards": result.skipped_shards,
        "exhausted_shards": result.exhausted_shards,
        "degraded": result.degraded,
    }


@pytest.fixture(scope="module")
def parity_setup(tmp_path_factory):
    """Corpus, per-combination executors/coordinators, reference caches."""
    index, terms = make_random_index(
        num_lists=3, list_length=300, num_docs=1000, block_size=32, seed=21
    )
    spill_root = tmp_path_factory.mktemp("process-parity-shards")
    sharded = {
        (count, strategy): partition_index(index, count, strategy=strategy)
        for count in SHARD_COUNTS
        for strategy in STRATEGIES
    }
    single = QuerySession(index)
    setup = {
        "index": index,
        "terms": terms,
        "single": single,
        "sharded": sharded,
        "spill_root": spill_root,
        "thread_coordinators": {},
        "process_coordinators": {},
        "process_executors": [],
        "single_results": {},
        "thread_results": {},
    }
    yield setup
    for executor in setup["process_executors"]:
        executor.close()


def _thread_coordinator(setup, count, strategy):
    key = (count, strategy)
    coord = setup["thread_coordinators"].get(key)
    if coord is None:
        coord = MergeCoordinator(ShardExecutor(setup["sharded"][key]))
        setup["thread_coordinators"][key] = coord
    return coord


def _process_coordinator(setup, method, count, strategy):
    key = (method, count, strategy)
    coord = setup["process_coordinators"].get(key)
    if coord is None:
        # fork and spawn executors of the same partitioning share one
        # spill directory: the second one reuses the first one's files.
        spill = setup["spill_root"] / ("%s-%d" % (strategy, count))
        executor = ProcessShardExecutor(
            setup["sharded"][(count, strategy)],
            start_method=method,
            spill_dir=str(spill),
        )
        setup["process_executors"].append(executor)
        coord = MergeCoordinator(executor)
        setup["process_coordinators"][key] = coord
    return coord


def _single_result(setup, algorithm):
    result = setup["single_results"].get(algorithm)
    if result is None:
        result = setup["single"].run(setup["terms"], K, algorithm=algorithm)
        setup["single_results"][algorithm] = result
    return result


def _thread_result(setup, count, strategy, algorithm):
    key = (count, strategy, algorithm)
    result = setup["thread_results"].get(key)
    if result is None:
        result = _thread_coordinator(setup, count, strategy).query(
            setup["terms"], K, algorithm=algorithm
        )
        setup["thread_results"][key] = result
    return result


@pytest.mark.parametrize("method", START_METHODS)
@pytest.mark.parametrize("strategy", STRATEGIES)
@pytest.mark.parametrize("count", SHARD_COUNTS)
@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_process_matches_thread_and_single_node(
    parity_setup, algorithm, count, strategy, method
):
    process = _process_coordinator(
        parity_setup, method, count, strategy
    ).query(parity_setup["terms"], K, algorithm=algorithm)
    thread = _thread_result(parity_setup, count, strategy, algorithm)
    # Byte-identical across backends: exact equality, no approx.
    assert _fingerprint(process) == _fingerprint(thread)
    single = _single_result(parity_setup, algorithm)
    assert process.doc_ids == single.doc_ids
    for item, reference in zip(process.items, single.items):
        assert item.worstscore == pytest.approx(
            reference.worstscore, abs=1e-9
        )


@pytest.mark.parametrize("method", START_METHODS)
def test_gather_mode_parity(parity_setup, method):
    process = _process_coordinator(parity_setup, method, 4, "hash").query(
        parity_setup["terms"], K, mode="gather"
    )
    thread = _thread_coordinator(parity_setup, 4, "hash").query(
        parity_setup["terms"], K, mode="gather"
    )
    assert _fingerprint(process) == _fingerprint(thread)
    assert process.coordinator_rounds == 1


@pytest.mark.parametrize("method", START_METHODS)
def test_prediction_parity(parity_setup, method):
    """Threshold-prediction shard skipping survives the backend swap."""
    from repro.core.session import ShardedSession

    index = parity_setup["index"]
    spill = parity_setup["spill_root"] / "prediction"
    with ShardedSession(
        index,
        num_shards=4,
        backend="process",
        start_method=method,
        spill_dir=str(spill),
        predict_threshold=True,
    ) as process_session:
        with ShardedSession(
            index, num_shards=4, predict_threshold=True
        ) as thread_session:
            process = process_session.run(parity_setup["terms"], K)
            thread = thread_session.run(parity_setup["terms"], K)
    assert _fingerprint(process) == _fingerprint(thread)
    assert process.predicted_threshold == thread.predicted_threshold


@pytest.mark.parametrize("method", START_METHODS)
def test_accounting_parity(parity_setup, method):
    """Per-shard lifetime accounting matches across backends."""
    sharded = parity_setup["sharded"][(2, "hash")]
    spill = parity_setup["spill_root"] / "accounting"
    thread_executor = ShardExecutor(sharded)
    process_executor = ProcessShardExecutor(
        sharded, start_method=method, spill_dir=str(spill)
    )
    parity_setup["process_executors"].append(process_executor)
    MergeCoordinator(thread_executor).query(parity_setup["terms"], K)
    MergeCoordinator(process_executor).query(parity_setup["terms"], K)
    for shard_id in range(sharded.num_shards):
        mine = process_executor.accounting[shard_id]
        reference = thread_executor.accounting[shard_id]
        assert (
            mine.executions,
            mine.sorted_accesses,
            mine.random_accesses,
            mine.cost,
            mine.engine_rounds,
            mine.failures,
        ) == (
            reference.executions,
            reference.sorted_accesses,
            reference.random_accesses,
            reference.cost,
            reference.engine_rounds,
            reference.failures,
        )
