"""Unit tests for the random-access scheduling policies (Sec. 5)."""

import pytest

from repro.core.algorithms import TopKProcessor
from repro.core.engine import QueryState
from repro.core.ra.ben import BenProbe
from repro.core.ra.last import LastProbe, PickProbe, _all_results_seen
from repro.core.ra.ordering import (
    BenOrdering,
    BestOrdering,
    expected_wasted_ra_cost,
    final_probe_phase,
)
from repro.core.ra.simple import AllProbe, EachProbe, NeverProbe, TopProbe
from repro.core.sa.round_robin import RoundRobin
from repro.stats.catalog import StatsCatalog
from repro.storage.diskmodel import CostModel



def make_state(index, terms, k=5, ratio=100):
    return QueryState(
        index=index,
        stats=StatsCatalog(index),
        terms=terms,
        k=k,
        cost_model=CostModel.from_ratio(ratio),
    )


def run_rounds(state, ra_policy, rounds=3):
    rr = RoundRobin()
    for _ in range(rounds):
        if not ra_policy.wants_sorted_access(state) or state.exhausted:
            break
        state.perform_sorted_round(rr.allocate(state, state.batch_blocks))
        ra_policy.after_round(state)
        state.recompute()


class TestNeverProbe(object):
    def test_no_random_accesses(self, small_index):
        index, terms = small_index
        state = make_state(index, terms)
        run_rounds(state, NeverProbe(), rounds=5)
        assert state.meter.random_accesses == 0


class TestAllProbe(object):
    def test_every_new_doc_resolved(self, small_index):
        index, terms = small_index
        state = make_state(index, terms)
        policy = AllProbe()
        rr = RoundRobin()
        state.perform_sorted_round(rr.allocate(state, 3))
        policy.after_round(state)
        for cand in state.pool.candidates.values():
            assert cand.seen_mask == state.pool.full_mask

    def test_no_doc_probed_twice(self, small_index):
        index, terms = small_index
        state = make_state(index, terms)
        policy = AllProbe()
        rr = RoundRobin()
        for _ in range(3):
            state.perform_sorted_round(rr.allocate(state, 3))
            policy.after_round(state)
            state.recompute()
        # Probes are bounded by (m-1) per distinct doc id ever seen.
        distinct = len(policy._resolved)
        assert state.meter.random_accesses <= distinct * (state.num_lists - 1) + distinct


class TestEachProbe(object):
    def test_ra_budget_follows_cost_ratio(self, small_index):
        index, terms = small_index
        state = make_state(index, terms, ratio=50)
        policy = EachProbe()
        run_rounds(state, policy, rounds=4)
        assert state.meter.random_accesses <= (
            state.meter.sorted_accesses / 50 + 1
        )

    def test_no_probes_when_ratio_prohibitive(self, small_index):
        index, terms = small_index
        state = make_state(index, terms, ratio=10**9)
        policy = EachProbe()
        run_rounds(state, policy, rounds=3)
        assert state.meter.random_accesses == 0


class TestTopProbe(object):
    def test_probes_only_above_unseen_bound(self, small_index):
        index, terms = small_index
        state = make_state(index, terms)
        policy = TopProbe()
        rr = RoundRobin()
        state.perform_sorted_round(rr.allocate(state, 3))
        bar = max(state.pool.unseen_bestscore, state.min_k)
        policy.after_round(state)
        state.recompute()
        # After the hook no unresolved candidate may exceed the bar the
        # policy saw (the bound only got tighter since).
        for cand in state.pool.unresolved():
            assert state.pool.bestscore(cand) <= bar + 1e-9


class TestPickProbe(object):
    def test_switch_waits_for_unseen_bound(self, small_index):
        index, terms = small_index
        state = make_state(index, terms)
        policy = PickProbe()
        assert policy.wants_sorted_access(state)
        # Before any scanning, nothing is seen: no switch.
        policy.after_round(state)
        assert not policy._switched

    def test_switch_resolves_everything(self, small_index):
        index, terms = small_index
        state = make_state(index, terms, ratio=10)
        policy = PickProbe()
        rr = RoundRobin()
        while not state.is_terminated and not policy._switched:
            state.perform_sorted_round(rr.allocate(state, 3))
            policy.after_round(state)
            state.recompute()
        assert policy._switched or state.is_terminated
        if policy._switched:
            assert state.is_terminated


class TestLastProbe(object):
    def test_estimate_zero_for_empty_queue(self, small_index):
        index, terms = small_index
        state = make_state(index, terms)
        assert LastProbe.estimate_remaining_probes(state) == 0.0

    def test_estimate_bounded_by_missing_dims(self, small_index):
        index, terms = small_index
        state = make_state(index, terms)
        rr = RoundRobin()
        state.perform_sorted_round(rr.allocate(state, 3))
        total_missing = sum(
            len(state.pool.missing_dims(c)) for c in state.pool.queue()
        )
        estimate = LastProbe.estimate_remaining_probes(state)
        assert 0.0 <= estimate <= total_missing + 1e-9

    def test_respects_balance_criterion(self, small_index):
        index, terms = small_index
        # With an enormous ratio the balance criterion can never be met
        # before exhaustion: Last must behave exactly like NRA.
        processor = TopKProcessor(index, cost_ratio=10**9)
        result = processor.query(terms, 5, algorithm="RR-Last-Best")
        assert result.stats.random_accesses == 0


class TestBenProbe(object):
    def test_accumulates_sa_ewc(self, small_index):
        index, terms = small_index
        state = make_state(index, terms)
        policy = BenProbe()
        rr = RoundRobin()
        state.perform_sorted_round(rr.allocate(state, 3))
        policy.after_round(state)
        first = policy._cumulative_sa_ewc
        assert first > 0
        state.perform_sorted_round(rr.allocate(state, 3))
        policy.after_round(state)
        assert policy._cumulative_sa_ewc > first

    def test_batch_ewc_at_most_batch(self, small_index):
        index, terms = small_index
        state = make_state(index, terms)
        policy = BenProbe()
        rr = RoundRobin()
        state.perform_sorted_round(rr.allocate(state, 3))
        batch = sum(state.last_allocation)
        assert policy._batch_sa_ewc(state) <= batch + 1e-9


class TestOrderings(object):
    def test_best_ordering_descends(self, small_index):
        index, terms = small_index
        state = make_state(index, terms)
        rr = RoundRobin()
        state.perform_sorted_round(rr.allocate(state, 3))
        queue = state.pool.queue()
        ordered = BestOrdering().order(state, queue)
        bests = [state.pool.bestscore(c) for c in ordered]
        assert bests == sorted(bests, reverse=True)

    def test_ben_ordering_ascends_in_ewc(self, small_index):
        index, terms = small_index
        state = make_state(index, terms)
        rr = RoundRobin()
        state.perform_sorted_round(rr.allocate(state, 3))
        queue = state.pool.queue()
        ordered = BenOrdering().order(state, queue)
        costs = [expected_wasted_ra_cost(state, c) for c in ordered]
        assert costs == sorted(costs)

    def test_ewc_zero_for_resolved(self, small_index):
        index, terms = small_index
        state = make_state(index, terms)
        cand = state.pool.resolve_dimension(1, 0, 0.5)
        state.pool.resolve_dimension(1, 1, 0.5)
        state.pool.resolve_dimension(1, 2, 0.5)
        assert expected_wasted_ra_cost(state, cand) == 0.0


class TestFinalProbePhase(object):
    @pytest.mark.parametrize("ordering", [BestOrdering(), BenOrdering()])
    def test_phase_terminates_the_query(self, ordering, small_index):
        index, terms = small_index
        state = make_state(index, terms)
        rr = RoundRobin()
        # Scan until every potential winner has been seen.
        while not _all_results_seen(state) and not state.exhausted:
            state.perform_sorted_round(rr.allocate(state, 3))
        final_probe_phase(state, ordering)
        assert state.is_terminated

    def test_noop_without_full_topk(self, small_index):
        index, terms = small_index
        state = make_state(index, terms, k=50)
        final_probe_phase(state, BestOrdering())
        assert state.meter.random_accesses == 0
