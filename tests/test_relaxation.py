"""Unit tests for attribute-value relaxation (paper Sec. 2.3)."""

import pytest

from repro.core.algorithms import TopKProcessor
from repro.data.relaxation import (
    numeric_similarity,
    relax_value_lists,
    relaxed_term,
)
from repro.storage.index_builder import build_index


@pytest.fixture
def year_lists():
    # Per-year posting lists: (movie, score).
    return {
        1998: [(1, 1.0), (2, 0.5)],
        1999: [(3, 1.0), (4, 0.8)],
        2000: [(2, 1.0), (5, 0.6)],
        2010: [(6, 1.0)],
    }


class TestNumericSimilarity:
    def test_exact_match_is_one(self):
        sim = numeric_similarity(0.5)
        assert sim(1999, 1999) == 1.0

    def test_decays_with_distance(self):
        sim = numeric_similarity(0.5)
        assert sim(1999, 1998) == pytest.approx(1 / 1.5)
        assert sim(1999, 1997) < sim(1999, 1998)
        assert sim(1999, 2000) == sim(1999, 1998)  # symmetric

    def test_zero_decay_treats_all_equal(self):
        sim = numeric_similarity(0.0)
        assert sim(1999, 1900) == 1.0

    def test_rejects_negative_decay(self):
        with pytest.raises(ValueError):
            numeric_similarity(-1.0)


class TestRelaxValueLists:
    def test_exact_value_keeps_full_scores(self, year_lists):
        merged = dict(
            relax_value_lists(year_lists, 1999, numeric_similarity(0.5))
        )
        assert merged[3] == pytest.approx(1.0)
        assert merged[4] == pytest.approx(0.8)

    def test_neighbors_weighted_down(self, year_lists):
        merged = dict(
            relax_value_lists(year_lists, 1999, numeric_similarity(0.5))
        )
        # Movie 1 is from 1998: similarity 1/1.5.
        assert merged[1] == pytest.approx(1 / 1.5)

    def test_takes_max_over_values(self, year_lists):
        merged = dict(
            relax_value_lists(year_lists, 1999, numeric_similarity(0.5))
        )
        # Movie 2 appears in 1998 (0.5) and 2000 (1.0): the 2000 entry
        # weighted by 1/1.5 wins over the 1998 one weighted likewise.
        assert merged[2] == pytest.approx(1.0 / 1.5)

    def test_min_similarity_cuts_far_values(self, year_lists):
        merged = dict(
            relax_value_lists(
                year_lists, 1999, numeric_similarity(0.5),
                min_similarity=0.3,
            )
        )
        assert 6 not in merged  # year 2010 is too far

    def test_output_sorted_descending(self, year_lists):
        merged = relax_value_lists(
            year_lists, 1999, numeric_similarity(0.5)
        )
        scores = [s for _, s in merged]
        assert scores == sorted(scores, reverse=True)

    def test_validation(self, year_lists):
        with pytest.raises(ValueError):
            relax_value_lists(
                year_lists, 1999, numeric_similarity(0.5),
                min_similarity=2.0,
            )


class TestEndToEnd:
    def test_relaxed_condition_inside_a_query(self, year_lists):
        # Build an index with one relaxed year list plus a text list, then
        # run a top-k query over both — the paper's combined scenario.
        term = relaxed_term("year", 1999)
        postings = {
            term: relax_value_lists(
                year_lists, 1999, numeric_similarity(0.5)
            ),
            "title": [(3, 0.4), (2, 0.9), (6, 0.8)],
        }
        index = build_index(postings, num_docs=10, block_size=2)
        processor = TopKProcessor(index, cost_ratio=10)
        result = processor.query([term, "title"], k=2)
        # Movie 3: year match 1.0 + title 0.4 = 1.4;
        # movie 2: 0.667 + 0.9 = 1.567 -> the winner.
        assert result.doc_ids[0] == 2
        assert result.items[0].worstscore == pytest.approx(1.0 / 1.5 + 0.9)

    def test_relaxed_term_naming(self):
        assert relaxed_term("year", 1999) == "year~1999"
