"""End-to-end chaos tests: the engine under injected storage faults.

Satellite (d) of the robustness PR: a seeded fault plan must give
identical results across runs, a zero-rate plan must be byte-identical
to the fault-free engine, moderate fault rates must still yield the
exact top-k via retries, and a dead list must produce an honestly
degraded anytime result whose score intervals contain the truth.
"""

import pytest

from repro.core.algorithms import TopKProcessor
from repro.core.engine import QueryDeadline
from repro.storage.accessors import RetryPolicy
from repro.storage.faults import FaultInjector, FaultPlan

from tests.helpers import make_random_index, true_score


K = 10
ALGORITHM = "KSR-Last-Ben"


def chaos_processor(index, plan, **retry_kwargs):
    injector = FaultInjector(plan)
    return TopKProcessor(
        injector.wrap_index(index),
        cost_ratio=1000.0,
        retry_policy=RetryPolicy(**retry_kwargs),
    )


class TestZeroRatePlan:
    def test_identical_to_fault_free_engine(self):
        index, terms = make_random_index(seed=11)
        clean = TopKProcessor(index, cost_ratio=1000.0)
        chaotic = chaos_processor(index, FaultPlan.uniform(0.0))

        expected = clean.query(terms, K, algorithm=ALGORITHM)
        actual = chaotic.query(terms, K, algorithm=ALGORITHM)

        assert actual.doc_ids == expected.doc_ids
        assert [i.worstscore for i in actual.items] == \
               [i.worstscore for i in expected.items]
        assert actual.stats.sorted_accesses == expected.stats.sorted_accesses
        assert actual.stats.random_accesses == expected.stats.random_accesses
        assert actual.stats.cost == expected.stats.cost
        assert actual.stats.retries == 0
        assert actual.stats.simulated_io_wait_ms == 0.0
        assert not actual.degraded
        assert actual.exhausted_lists == []


class TestSeededFaults:
    def test_five_percent_faults_recovered_exactly(self):
        index, terms = make_random_index(seed=7)
        clean = TopKProcessor(index, cost_ratio=1000.0)
        plan = FaultPlan.uniform(0.05, seed=42, corruption_rate=0.01)
        chaotic = chaos_processor(index, plan)

        expected = clean.query(terms, K, algorithm=ALGORITHM)
        actual = chaotic.query(terms, K, algorithm=ALGORITHM)

        assert actual.doc_ids == expected.doc_ids
        assert not actual.degraded
        assert actual.stats.retries > 0
        assert actual.stats.cost >= expected.stats.cost

    def test_seeded_plan_is_deterministic_across_runs(self):
        index, terms = make_random_index(seed=7)
        plan = FaultPlan(seed=99, read_fault_rate=0.2, probe_fault_rate=0.2,
                         corruption_rate=0.05, latency_spike_rate=0.1)

        def run():
            result = chaos_processor(index, plan).query(
                terms, K, algorithm=ALGORITHM
            )
            return (
                result.doc_ids,
                [i.worstscore for i in result.items],
                result.stats.cost,
                result.stats.retries,
                result.stats.simulated_io_wait_ms,
                result.degraded,
                tuple(result.exhausted_lists),
            )

        assert run() == run()

    @pytest.mark.parametrize("algorithm", ["RR-Never", "RR-Last-Ben",
                                           "KSR-Last-Ben", "RR-Top-Best"])
    def test_all_scheduling_families_survive_faults(self, algorithm):
        index, terms = make_random_index(seed=3)
        plan = FaultPlan.uniform(0.05, seed=13)
        result = chaos_processor(index, plan).query(
            terms, K, algorithm=algorithm
        )
        assert len(result.doc_ids) == K


class TestDegradedResults:
    def test_dead_list_yields_honest_degraded_result(self):
        index, terms = make_random_index(seed=5)
        plan = FaultPlan(dead_terms=(terms[0],))
        chaotic = chaos_processor(
            index, plan, max_attempts=2, query_budget=8
        )
        result = chaotic.query(terms, K, algorithm=ALGORITHM)

        assert result.degraded
        assert result.exhausted_lists == [terms[0]]
        assert len(result.doc_ids) == K
        for item in result.items:
            truth = true_score(index, terms, item.doc_id)
            assert item.worstscore - 1e-9 <= truth <= item.bestscore + 1e-9

    def test_cost_budget_deadline_gives_anytime_result(self):
        index, terms = make_random_index(seed=5)
        processor = TopKProcessor(index, cost_ratio=1000.0)
        full = processor.query(terms, K, algorithm=ALGORITHM)
        budget = full.stats.cost / 3.0
        capped = processor.query(
            terms, K, algorithm=ALGORITHM,
            deadline=QueryDeadline(cost_budget=budget),
        )
        assert capped.degraded
        assert capped.stats.cost < full.stats.cost
        for item in capped.items:
            truth = true_score(index, terms, item.doc_id)
            assert item.worstscore - 1e-9 <= truth <= item.bestscore + 1e-9

    def test_generous_deadline_changes_nothing(self):
        index, terms = make_random_index(seed=5)
        processor = TopKProcessor(index, cost_ratio=1000.0)
        free = processor.query(terms, K, algorithm=ALGORITHM)
        timed = processor.query(
            terms, K, algorithm=ALGORITHM,
            deadline=QueryDeadline(wall_clock_seconds=3600.0,
                                   cost_budget=1e12),
        )
        assert timed.doc_ids == free.doc_ids
        assert timed.stats.cost == free.stats.cost
        assert not timed.degraded

    def test_deadline_validation(self):
        with pytest.raises(ValueError):
            QueryDeadline()
        with pytest.raises(ValueError):
            QueryDeadline(wall_clock_seconds=-1.0)
        with pytest.raises(ValueError):
            QueryDeadline(cost_budget=0.0)
