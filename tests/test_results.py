"""Unit tests for result containers."""

import pytest

from repro.core.results import QueryStats, RankedItem, TopKResult
from repro.storage.diskmodel import AccessMeter, CostModel


class TestRankedItem:
    def test_resolved_when_bounds_meet(self):
        assert RankedItem(1, 0.5, 0.5).resolved
        assert not RankedItem(1, 0.5, 0.9).resolved

    def test_immutability(self):
        item = RankedItem(1, 0.5, 0.6)
        with pytest.raises(AttributeError):
            item.worstscore = 1.0


class TestQueryStats:
    def test_from_meter(self):
        meter = AccessMeter(cost_model=CostModel.from_ratio(10))
        meter.charge_sorted(7)
        meter.charge_random(2)
        stats = QueryStats.from_meter(meter, rounds=3, peak_queue_size=42)
        assert stats.sorted_accesses == 7
        assert stats.random_accesses == 2
        assert stats.cost == 27.0
        assert stats.rounds == 3
        assert stats.peak_queue_size == 42


class TestTopKResult:
    def test_doc_ids_in_rank_order(self):
        result = TopKResult(items=[
            RankedItem(5, 0.9, 0.9), RankedItem(2, 0.7, 0.8),
        ])
        assert result.doc_ids == [5, 2]
        assert len(result) == 2

    def test_min_k(self):
        result = TopKResult(items=[
            RankedItem(5, 0.9, 0.9), RankedItem(2, 0.7, 0.8),
        ])
        assert result.min_k == 0.7

    def test_empty_result(self):
        result = TopKResult()
        assert result.doc_ids == []
        assert result.min_k == 0.0
