"""Deadline-aware retries: no retry budget burned past the deadline.

Satellite of the serving PR: :class:`RetrySession` can be bound to the
query's deadline, after which it grants no retries and charges no
simulated backoff — a faulty list must not keep a query alive (and
waiting) when its answer is already due.
"""

import pytest

from repro.core.executor import ExecutionListener, QueryDeadline
from repro.core.session import QuerySession
from repro.storage.accessors import RetryPolicy, RetrySession
from repro.storage.faults import FaultInjector, FaultPlan

from tests.helpers import make_random_index

K = 10
ALGORITHM = "KSR-Last-Ben"


class RetryTap(ExecutionListener):
    """Captures the per-query retry session at termination."""

    def __init__(self):
        self.retry = None

    def on_termination(self, state, result, reason):
        self.retry = state.retry


class TestRetrySessionUnit:
    def policy(self, **kwargs):
        defaults = dict(max_attempts=4, query_budget=16)
        defaults.update(kwargs)
        return RetryPolicy(**defaults)

    def test_unbound_session_grants_normally(self):
        session = RetrySession(self.policy())
        assert session.grant(1)
        assert session.retries == 1
        assert session.waited_ms > 0.0
        assert session.deadline_denied == 0

    def test_expired_deadline_denies_and_charges_nothing(self):
        session = RetrySession(self.policy())
        session.bind_deadline(lambda: True)
        assert not session.grant(1)
        assert session.deadline_denied == 1
        assert session.retries == 0
        assert session.waited_ms == 0.0

    def test_live_deadline_keeps_granting(self):
        session = RetrySession(self.policy())
        session.bind_deadline(lambda: False)
        assert session.grant(1)
        assert session.deadline_denied == 0

    def test_denial_counts_accumulate(self):
        session = RetrySession(self.policy())
        session.grant(1)  # one legitimate retry first
        waited = session.waited_ms
        session.bind_deadline(lambda: True)
        assert not session.grant(2)
        assert not session.grant(2)
        assert session.deadline_denied == 2
        assert session.retries == 1
        assert session.waited_ms == waited  # frozen at expiry

    def test_deadline_check_runs_before_budget_checks(self):
        session = RetrySession(self.policy(max_attempts=1))
        session.bind_deadline(lambda: True)
        # Even an over-budget attempt is recorded as a deadline denial:
        # the deadline is the stronger (and cheaper) reason to stop.
        assert not session.grant(5)
        assert session.deadline_denied == 1


class TestExecutorBinding:
    def run_faulty(self, index, terms, deadline=None):
        injector = FaultInjector(FaultPlan(dead_terms=(terms[0],)))
        tap = RetryTap()
        session = QuerySession(
            injector.wrap_index(index),
            retry_policy=RetryPolicy(max_attempts=3, query_budget=64),
        )
        result = session.run(
            terms, K, algorithm=ALGORITHM, deadline=deadline,
            listeners=(tap,),
        )
        assert tap.retry is not None
        return result, tap.retry

    def test_without_deadline_retries_burn_normally(self):
        index, terms = make_random_index(seed=5)
        result, retry = self.run_faulty(index, terms)
        assert result.degraded
        assert result.stats.retries > 0
        assert retry.deadline_denied == 0

    def test_expired_deadline_stops_retrying(self):
        index, terms = make_random_index(seed=5)
        baseline, _ = self.run_faulty(index, terms)
        # A cost budget of 1 is exhausted by the very first failed read
        # (failed attempts still charge their sorted accesses), so every
        # retry decision after it must be denied by the deadline.
        result, retry = self.run_faulty(
            index, terms, deadline=QueryDeadline(cost_budget=1.0)
        )
        assert result.degraded
        assert retry.deadline_denied > 0
        assert result.stats.retries < baseline.stats.retries
        assert (
            result.stats.simulated_io_wait_ms
            < baseline.stats.simulated_io_wait_ms
        )

    def test_results_stay_well_formed_under_denied_retries(self):
        index, terms = make_random_index(seed=5)
        result, _ = self.run_faulty(
            index, terms, deadline=QueryDeadline(cost_budget=1.0)
        )
        for item in result.items:
            assert item.worstscore <= item.bestscore + 1e-9

    def test_fault_free_query_never_consults_the_deadline(self):
        index, terms = make_random_index(seed=5)
        tap = RetryTap()
        session = QuerySession(
            index, retry_policy=RetryPolicy(max_attempts=3, query_budget=64)
        )
        result = session.run(
            terms, K, algorithm=ALGORITHM,
            deadline=QueryDeadline(cost_budget=1.0), listeners=(tap,),
        )
        assert result.stats.retries == 0
        assert tap.retry.deadline_denied == 0
