"""Unit tests for the sorted-access scheduling policies (Sec. 4)."""

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.engine import QueryState
from repro.core.sa.kba import KnapsackBenefitAggregation
from repro.core.sa.knapsack import (
    allocate_budget,
    allocation_value,
    delta_table,
    prefer_round_robin,
)
from repro.core.sa.ksr import KnapsackScoreReduction, _unseen_candidate_counts
from repro.core.sa.round_robin import RoundRobin
from repro.stats.catalog import StatsCatalog
from repro.storage.diskmodel import CostModel
from repro.storage.index_builder import build_index

from tests.helpers import make_random_index


def make_state(index, terms, k=5):
    return QueryState(
        index=index,
        stats=StatsCatalog(index),
        terms=terms,
        k=k,
        cost_model=CostModel.from_ratio(100),
    )


class TestAllocateBudget:
    def test_respects_budget(self):
        gains = [[0, 1, 2], [0, 5, 6], [0, 1, 1]]
        allocation = allocate_budget(gains, 2)
        assert sum(allocation) == 2

    def test_picks_best_split(self):
        # One list dominates: all budget should go there.
        gains = [[0, 10, 25, 45], [0, 1, 2, 3]]
        assert allocate_budget(gains, 3) == [3, 0]

    def test_balanced_on_ties(self):
        gains = [[0, 1, 2, 3], [0, 1, 2, 3]]
        assert sorted(allocate_budget(gains, 2)) == [1, 1]

    def test_capacity_caps_budget(self):
        gains = [[0, 1], [0, 1]]  # each list has one block left
        allocation = allocate_budget(gains, 10)
        assert allocation == [1, 1]

    def test_zero_budget(self):
        assert allocate_budget([[0, 1]], 0) == [0]

    def test_empty_gains(self):
        assert allocate_budget([], 5) == []

    @settings(max_examples=60, deadline=None)
    @given(
        st.lists(
            st.lists(
                st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
                min_size=1, max_size=5,
            ),
            min_size=1, max_size=4,
        ),
        st.integers(min_value=1, max_value=8),
    )
    def test_dp_matches_exhaustive_search(self, gains, budget):
        """Property: the DP finds a maximum over all exact allocations."""
        gains = [[0.0] + row[1:] for row in gains]  # x=0 always gains 0
        allocation = allocate_budget(gains, budget)
        capacity = sum(len(row) - 1 for row in gains)
        spend = min(budget, capacity)
        assert sum(allocation) == spend
        best = allocation_value(gains, allocation)
        ranges = [range(len(row)) for row in gains]
        for combo in itertools.product(*ranges):
            if sum(combo) != spend:
                continue
            value = sum(row[x] for row, x in zip(gains, combo))
            assert best >= value - 1e-9


class TestPreferRoundRobin:
    def test_keeps_clear_winner(self):
        gains = [[0, 10], [0, 1]]
        assert prefer_round_robin(gains, [1, 0], [0, 1]) == [1, 0]

    def test_falls_back_on_near_tie(self):
        gains = [[0, 1.0], [0, 0.999]]
        assert prefer_round_robin(gains, [1, 0], [0, 1]) == [0, 1]


class TestRoundRobin:
    def test_even_split(self, small_index):
        index, terms = small_index
        state = make_state(index, terms)
        allocation = RoundRobin().allocate(state, 3)
        assert allocation == [1, 1, 1]

    def test_surplus_rotates(self, small_index):
        index, terms = small_index
        state = make_state(index, terms)
        policy = RoundRobin()
        first = policy.allocate(state, 4)
        second = policy.allocate(state, 4)
        assert sum(first) == sum(second) == 4
        assert first != second  # the extra block moves on

    def test_skips_exhausted_lists(self, small_index):
        index, terms = small_index
        state = make_state(index, terms)
        blocks0 = index.list_for(terms[0]).num_blocks
        state.perform_sorted_round([blocks0, 0, 0])
        allocation = RoundRobin().allocate(state, 2)
        assert allocation[0] == 0
        assert sum(allocation) == 2

    def test_clamps_to_remaining_blocks(self):
        postings = {
            "tiny": [(d, 0.5) for d in range(4)],
            "big": [(d, 0.5) for d in range(64)],
        }
        index = build_index(postings, num_docs=100, block_size=4)
        state = make_state(index, ["tiny", "big"])
        allocation = RoundRobin().allocate(state, 8)
        assert allocation[0] <= 1  # "tiny" has a single block
        assert sum(allocation) == 8

    def test_zero_budget(self, small_index):
        index, terms = small_index
        state = make_state(index, terms)
        assert RoundRobin().allocate(state, 0) == [0, 0, 0]


class TestDeltaTable:
    def test_zero_blocks_is_zero(self, small_index):
        index, terms = small_index
        state = make_state(index, terms)
        assert delta_table(state, 0, 0) == [0.0]

    def test_monotone_non_decreasing(self, small_index):
        index, terms = small_index
        state = make_state(index, terms)
        table = delta_table(state, 0, 5)
        assert all(a <= b + 1e-12 for a, b in zip(table, table[1:]))

    def test_bounded_by_high(self, small_index):
        index, terms = small_index
        state = make_state(index, terms)
        high = state.cursors[0].high
        table = delta_table(state, 0, 8)
        assert all(value <= high + 1e-9 for value in table)

    def test_near_linear_for_uniform_scores(self):
        index, terms = make_random_index(
            num_lists=1, list_length=4000, num_docs=8000,
            distribution="uniform", seed=9, block_size=256,
        )
        state = make_state(index, terms, k=1)
        table = delta_table(state, 0, 8)
        marginals = [b - a for a, b in zip(table, table[1:])]
        # Anchored estimates keep the uniform curve close to linear.
        assert max(marginals) <= min(marginals) * 1.5 + 1e-9


class TestKnapsackPolicies:
    @pytest.mark.parametrize("policy_cls", [
        KnapsackScoreReduction, KnapsackBenefitAggregation,
    ])
    def test_first_round_falls_back_to_round_robin(self, policy_cls,
                                                   small_index):
        index, terms = small_index
        state = make_state(index, terms)
        allocation = policy_cls().allocate(state, 3)
        assert allocation == [1, 1, 1]

    @pytest.mark.parametrize("policy_cls", [
        KnapsackScoreReduction, KnapsackBenefitAggregation,
    ])
    def test_allocations_respect_budget(self, policy_cls, small_index):
        index, terms = small_index
        state = make_state(index, terms)
        policy = policy_cls()
        for _ in range(4):
            allocation = policy.allocate(state, 3)
            assert sum(allocation) <= 3
            assert all(b >= 0 for b in allocation)
            if not any(allocation):
                break
            state.perform_sorted_round(allocation)

    def test_ksr_prefers_steep_useful_list(self):
        # List "steep" drops sharply, list "flat" stays high; candidates
        # missing both exist after the first round.  KSR must give the
        # steep list at least as much as the flat one.
        steep = [(d, max(1.0 - d / 20, 0.01)) for d in range(400)]
        flat = [(d + 1000, 0.9 - d * 1e-4) for d in range(400)]
        index = build_index(
            {"steep": steep, "flat": flat}, num_docs=4000, block_size=16
        )
        state = make_state(index, ["steep", "flat"], k=3)
        state.perform_sorted_round([1, 1])
        weights = _unseen_candidate_counts(state)
        assert all(w > 0 for w in weights)
        allocation = KnapsackScoreReduction().allocate(state, 4)
        assert allocation[0] >= allocation[1]

    def test_unseen_candidate_counts(self, small_index):
        index, terms = small_index
        state = make_state(index, terms)
        state.perform_sorted_round([1, 0, 0])
        weights = _unseen_candidate_counts(state)
        assert weights[0] == 0  # everyone seen in list 0 so far
        assert weights[1] == len(state.pool.candidates)
        assert weights[2] == len(state.pool.candidates)
