"""Unit tests for the combined score/selectivity predictor (Sec. 3.1-3.3)."""

import numpy as np
import pytest

from repro.stats.correlation import CovarianceTable
from repro.stats.histogram import ScoreHistogram
from repro.stats.score_predictor import ScorePredictor


def make_predictor(score_sets, num_docs=1000, covariance=None):
    histograms = [ScoreHistogram(np.array(s)) for s in score_sets]
    lengths = [len(s) for s in score_sets]
    return ScorePredictor(
        histograms, lengths, num_docs=num_docs, covariance=covariance
    )


class TestScoreExceedance:
    def test_negative_deficit_is_certain(self):
        predictor = make_predictor([[0.5, 0.4], [0.3]])
        assert predictor.score_exceedance(0b11, -0.1) == 1.0

    def test_empty_remainder_is_impossible(self):
        predictor = make_predictor([[0.5, 0.4]])
        assert predictor.score_exceedance(0, 0.2) == 0.0

    def test_monotone_in_threshold(self):
        rng = np.random.default_rng(0)
        predictor = make_predictor([rng.random(300), rng.random(300)])
        values = [
            predictor.score_exceedance(0b11, t)
            for t in np.linspace(0, 2, 20)
        ]
        assert all(a >= b - 1e-9 for a, b in zip(values, values[1:]))

    def test_matches_monte_carlo(self):
        rng = np.random.default_rng(1)
        scores_a = rng.random(4000)
        scores_b = rng.random(4000)
        predictor = make_predictor([scores_a, scores_b])
        threshold = 1.2
        estimate = predictor.score_exceedance(0b11, threshold)
        samples = rng.choice(scores_a, 20_000) + rng.choice(scores_b, 20_000)
        empirical = float((samples > threshold).mean())
        assert estimate == pytest.approx(empirical, abs=0.05)

    def test_refresh_conditions_on_tail(self):
        # After consuming the high half of a bimodal list, exceeding a high
        # threshold with the remaining tail should be (near) impossible.
        scores = np.concatenate([np.full(100, 0.9), np.full(100, 0.1)])
        predictor = make_predictor([scores])
        before = predictor.score_exceedance(0b1, 0.5)
        predictor.refresh([100])
        after = predictor.score_exceedance(0b1, 0.5)
        assert before > 0.3
        assert after < 0.05

    def test_exhausted_list_contributes_zero(self):
        predictor = make_predictor([[0.5, 0.4], [0.3, 0.2]])
        predictor.refresh([2, 0])
        # Remainder = both lists, but list 0 is exhausted: the sum can only
        # exceed what list 1's tail can deliver.
        assert predictor.score_exceedance(0b11, 0.35) == 0.0


class TestOccurrence:
    def test_independence_fallback(self):
        predictor = make_predictor([[0.5] * 100, [0.4] * 200], num_docs=1000)
        assert predictor.remainder_occurrence(0, 0) == pytest.approx(0.1)
        assert predictor.remainder_occurrence(1, 0) == pytest.approx(0.2)

    def test_positions_shift_selectivity(self):
        predictor = make_predictor([[0.5] * 100], num_docs=1000)
        predictor.refresh([50])
        assert predictor.remainder_occurrence(0, 0) == pytest.approx(
            50 / 950
        )

    def test_covariance_used_when_seen(self):
        from repro.storage.index_builder import build_index_list

        a = build_index_list("a", [(d, 0.5) for d in range(10)])
        b = build_index_list("b", [(d, 0.5) for d in range(5, 15)])
        table = CovarianceTable.from_index_lists([a, b], num_docs=100)
        predictor = make_predictor(
            [[0.5] * 10, [0.5] * 10], num_docs=100, covariance=table
        )
        # Having seen list 1, occurrence in list 0 uses l_ab / l_b = 0.5.
        assert predictor.remainder_occurrence(0, 0b10) == pytest.approx(0.5)

    def test_any_occurrence_combines(self):
        predictor = make_predictor(
            [[0.5] * 100, [0.5] * 100], num_docs=1000
        )
        expected = 1 - (1 - 0.1) * (1 - 0.1)
        assert predictor.any_occurrence(0) == pytest.approx(expected)

    def test_any_occurrence_ignores_seen_dims(self):
        predictor = make_predictor(
            [[0.5] * 100, [0.5] * 100], num_docs=1000
        )
        assert predictor.any_occurrence(0b11) == 0.0


class TestQualifyProbability:
    def test_fully_seen_candidates(self):
        predictor = make_predictor([[0.5, 0.4]])
        assert predictor.qualify_probability(0b1, 0.9, 0.5) == 1.0
        assert predictor.qualify_probability(0b1, 0.3, 0.5) == 0.0

    def test_within_unit_interval(self):
        rng = np.random.default_rng(3)
        predictor = make_predictor(
            [rng.random(200), rng.random(200), rng.random(200)],
            num_docs=500,
        )
        for mask in range(8):
            p = predictor.qualify_probability(mask, 0.4, 1.0)
            assert 0.0 <= p <= 1.0

    def test_combines_score_and_selectivity(self):
        predictor = make_predictor(
            [[0.9] * 10, [0.9] * 10], num_docs=1000
        )
        # Candidate needs 0.5 more; each tail delivers 0.9 with certainty,
        # but occurrence is only ~1% per list -> combined ~2%.
        p = predictor.qualify_probability(0b00, 0.0, 0.5)
        p_score = predictor.score_exceedance(0b11, 0.5)
        q = predictor.any_occurrence(0b00)
        assert p == pytest.approx(p_score * q)
        assert p < 0.05


class TestRefreshValidation:
    def test_wrong_position_count_rejected(self):
        predictor = make_predictor([[0.5], [0.4]])
        with pytest.raises(ValueError):
            predictor.refresh([0])

    def test_mismatched_construction_rejected(self):
        with pytest.raises(ValueError):
            ScorePredictor(
                [ScoreHistogram(np.array([0.5]))], [1, 2], num_docs=10
            )


class TestBehaviorPins:
    """Pins for properties the planner and threshold harness rely on."""

    def test_mask_distributions_are_cached_per_refresh(self):
        rng = np.random.default_rng(7)
        predictor = make_predictor([rng.random(100), rng.random(100)])
        predictor.score_exceedance(0b11, 0.5)
        dist = predictor._mask_cache.get(0b11)
        assert dist is not None
        predictor.score_exceedance(0b11, 0.9)
        assert predictor._mask_cache[0b11] is dist  # reused, not rebuilt
        predictor.refresh([10, 10])
        assert 0b11 not in predictor._mask_cache  # invalidated

    def test_exceedance_monotone_in_scan_position(self):
        """Deeper scans can only shrink the tail's score mass."""
        scores = np.linspace(1.0, 0.01, 200)
        predictor = make_predictor([scores, scores])
        threshold = 0.8
        last = 1.0
        for pos in (0, 50, 100, 150, 200):
            predictor.refresh([pos, pos])
            value = predictor.score_exceedance(0b11, threshold)
            assert value <= last + 1e-9, pos
            last = value

    def test_any_occurrence_of_no_remainder_is_zero(self):
        predictor = make_predictor([[0.5] * 10, [0.4] * 10], num_docs=100)
        assert predictor.any_occurrence(0b11) == 0.0

    def test_any_occurrence_grows_with_more_remainder_lists(self):
        predictor = make_predictor(
            [[0.5] * 50, [0.4] * 50, [0.3] * 50], num_docs=200
        )
        one = predictor.any_occurrence(0b110)   # only list 0 remains
        two = predictor.any_occurrence(0b100)   # lists 0 and 1 remain
        three = predictor.any_occurrence(0b000)  # all three remain
        assert one <= two <= three
        assert three <= 1.0

    def test_covariance_changes_occurrence_only_when_seen(self):
        # perfect overlap: seeing a doc in list 0 implies list 1
        pair = np.array([[50.0, 50.0], [50.0, 50.0]])
        table = CovarianceTable([50, 50], pair, num_docs=500)
        scores = [[0.5] * 50, [0.4] * 50]
        with_cov = make_predictor(scores, num_docs=500, covariance=table)
        without = make_predictor(scores, num_docs=500)
        # nothing seen: both fall back to independence
        assert with_cov.remainder_occurrence(1, 0b00) == pytest.approx(
            without.remainder_occurrence(1, 0b00)
        )
        # doc seen in list 0: overlap lifts the conditional to ~1
        assert with_cov.remainder_occurrence(1, 0b01) == pytest.approx(1.0)
        assert without.remainder_occurrence(1, 0b01) == pytest.approx(0.1)

    def test_qualify_probability_monotone_in_worstscore(self):
        rng = np.random.default_rng(23)
        predictor = make_predictor(
            [rng.random(300), rng.random(300)], num_docs=600
        )
        values = [
            predictor.qualify_probability(0b01, w, 1.2)
            for w in np.linspace(0.0, 1.2, 10)
        ]
        assert all(a <= b + 1e-9 for a, b in zip(values, values[1:]))
