"""Unit tests for the corpus representation and scoring models."""

import numpy as np
import pytest

from repro.scoring.base import Corpus
from repro.scoring.bm25 import BM25
from repro.scoring.tfidf import TfIdf


@pytest.fixture
def tiny_corpus():
    # doc 0: "apple apple banana"; doc 1: "banana"; doc 2: "apple cherry
    # cherry cherry".
    return Corpus.from_documents([
        {"apple": 2, "banana": 1},
        {"banana": 1},
        {"apple": 1, "cherry": 3},
    ])


class TestCorpus:
    def test_basic_statistics(self, tiny_corpus):
        corpus = tiny_corpus
        assert corpus.num_docs == 3
        assert corpus.num_terms == 3
        assert corpus.document_frequency("apple") == 2
        assert corpus.document_frequency("banana") == 2
        assert corpus.document_frequency("cherry") == 1
        assert corpus.document_frequency("durian") == 0
        assert corpus.doc_lengths.tolist() == [3, 1, 4]
        assert corpus.avg_doc_length == pytest.approx(8 / 3)

    def test_postings_for(self, tiny_corpus):
        docs, tfs = tiny_corpus.postings_for("apple")
        assert sorted(zip(docs.tolist(), tfs.tolist())) == [(0, 2), (2, 1)]

    def test_postings_for_unknown_term(self, tiny_corpus):
        docs, tfs = tiny_corpus.postings_for("zzz")
        assert docs.size == 0 and tfs.size == 0

    def test_columnar_construction_validation(self):
        with pytest.raises(ValueError):
            Corpus(
                np.array([0]), np.array([0, 1]), np.array([1]),
                np.array([1]), ["a"],
            )
        with pytest.raises(ValueError):
            Corpus(
                np.array([0]), np.array([5]), np.array([1]),
                np.array([1]), ["a"],
            )
        with pytest.raises(ValueError):
            Corpus(
                np.array([9]), np.array([0]), np.array([1]),
                np.array([1]), ["a"],
            )


class TestBM25:
    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            BM25(k1=-1)
        with pytest.raises(ValueError):
            BM25(b=1.5)

    def test_idf_decreases_with_df(self, tiny_corpus):
        model = BM25()
        assert model.idf(tiny_corpus, "cherry") > model.idf(
            tiny_corpus, "apple"
        )

    def test_score_formula(self, tiny_corpus):
        model = BM25(k1=1.2, b=0.75)
        docs, scores = model.score_postings(tiny_corpus, "apple")
        by_doc = dict(zip(docs.tolist(), scores.tolist()))
        idf = model.idf(tiny_corpus, "apple")
        avg = tiny_corpus.avg_doc_length
        expected0 = idf * 2 * 2.2 / (2 + 1.2 * (0.25 + 0.75 * 3 / avg))
        assert by_doc[0] == pytest.approx(expected0)

    def test_tf_saturation(self, tiny_corpus):
        # Higher tf always scores higher, but with diminishing returns.
        corpus = Corpus.from_documents([
            {"x": 1}, {"x": 2}, {"x": 8},
        ])
        docs, scores = BM25(b=0.0).score_postings(corpus, "x")
        by_doc = dict(zip(docs.tolist(), scores.tolist()))
        assert by_doc[0] < by_doc[1] < by_doc[2]
        # Diminishing returns: the tf 1->2 step gains more per unit of tf
        # than the tf 2->8 step.
        assert by_doc[1] - by_doc[0] > (by_doc[2] - by_doc[1]) / 6

    def test_scores_non_negative(self, tiny_corpus):
        for term in tiny_corpus.vocabulary:
            _, scores = BM25().score_postings(tiny_corpus, term)
            assert np.all(scores >= 0)


class TestTfIdf:
    def test_idf_zero_for_everywhere_terms(self):
        corpus = Corpus.from_documents([{"x": 1}, {"x": 2}])
        assert TfIdf().idf(corpus, "x") == 0.0

    def test_length_damping(self):
        corpus = Corpus.from_documents([
            {"x": 1, "pad": 9},   # long doc
            {"x": 1},             # short doc
            {"y": 1},
        ])
        docs, scores = TfIdf().score_postings(corpus, "x")
        by_doc = dict(zip(docs.tolist(), scores.tolist()))
        assert by_doc[1] > by_doc[0]

    def test_linear_in_tf(self):
        corpus = Corpus.from_documents([
            {"x": 1, "p": 3}, {"x": 2, "p": 2}, {"y": 1},
        ])
        docs, scores = TfIdf().score_postings(corpus, "x")
        by_doc = dict(zip(docs.tolist(), scores.tolist()))
        assert by_doc[1] == pytest.approx(2 * by_doc[0])


class TestBuildIndex:
    @pytest.mark.parametrize("model", [BM25(), TfIdf()])
    def test_normalized_lists(self, model, tiny_corpus):
        index = model.build_index(tiny_corpus, block_size=4)
        for term in ("apple", "banana"):
            top = index.list_for(term).score_at_rank(0)
            assert top == pytest.approx(1.0)

    def test_restricting_terms(self, tiny_corpus):
        index = BM25().build_index(tiny_corpus, terms=["apple"])
        assert index.terms == ["apple"]
        assert index.num_docs == 3

    def test_scored_postings_roundtrip(self, tiny_corpus):
        postings = BM25().scored_postings(tiny_corpus, terms=["apple"])
        assert set(postings) == {"apple"}
        assert len(postings["apple"]) == 2

    def test_skips_empty_terms(self, tiny_corpus):
        postings = TfIdf().scored_postings(tiny_corpus, terms=["nope"])
        assert postings == {}


class TestDirichletLM:
    def make_corpus(self):
        from repro.scoring.base import Corpus

        return Corpus.from_documents([
            {"apple": 2, "banana": 1},
            {"banana": 3},
            {"apple": 1, "cherry": 3, "banana": 1},
        ])

    def test_parameter_validation(self):
        from repro.scoring.language_model import DirichletLM

        with pytest.raises(ValueError):
            DirichletLM(mu=0)

    def test_collection_probability(self):
        from repro.scoring.language_model import DirichletLM

        corpus = self.make_corpus()
        model = DirichletLM()
        # banana: 5 of 11 tokens.
        assert model.collection_probability(corpus, "banana") == (
            pytest.approx(5 / 11)
        )
        assert model.collection_probability(corpus, "zzz") == 0.0

    def test_scores_positive_and_tf_monotone(self):
        from repro.scoring.language_model import DirichletLM

        corpus = self.make_corpus()
        docs, scores = DirichletLM(mu=10).score_postings(corpus, "banana")
        assert np.all(scores > 0)
        by_doc = dict(zip(docs.tolist(), scores.tolist()))
        # doc 1 has tf=3 in a 3-token doc; doc 0 tf=1 in a 3-token doc.
        assert by_doc[1] > by_doc[0]

    def test_builds_a_queryable_index(self):
        from repro.core.algorithms import TopKProcessor
        from repro.scoring.language_model import DirichletLM

        corpus = self.make_corpus()
        index = DirichletLM(mu=10).build_index(corpus, block_size=2)
        processor = TopKProcessor(index, cost_ratio=10)
        result = processor.query(["apple", "banana"], 2)
        assert len(result.items) == 2

    def test_unknown_term_scores_empty(self):
        from repro.scoring.language_model import DirichletLM

        corpus = self.make_corpus()
        docs, scores = DirichletLM().score_postings(corpus, "zzz")
        assert docs.size == 0
