"""Unit tests for the selectivity estimator (paper Sec. 3.2)."""

import pytest

from repro.stats.selectivity import (
    any_occurrence_probability,
    remainder_selectivity,
)


class TestRemainderSelectivity:
    def test_formula(self):
        # q = (l - pos) / (n - pos)
        assert remainder_selectivity(100, 20, 1000) == pytest.approx(80 / 980)

    def test_at_start(self):
        assert remainder_selectivity(100, 0, 1000) == pytest.approx(0.1)

    def test_exhausted_list(self):
        assert remainder_selectivity(100, 100, 1000) == 0.0

    def test_position_clamped_to_list(self):
        assert remainder_selectivity(100, 150, 1000) == 0.0

    def test_negative_position_clamped(self):
        assert remainder_selectivity(100, -5, 1000) == pytest.approx(0.1)

    def test_whole_collection_list(self):
        # Every unseen doc is in the remainder.
        assert remainder_selectivity(1000, 400, 1000) == pytest.approx(1.0)

    def test_rejects_bad_num_docs(self):
        with pytest.raises(ValueError):
            remainder_selectivity(10, 0, 0)

    def test_result_in_unit_interval(self):
        for length, pos, n in [(50, 10, 60), (60, 59, 60), (1, 0, 2)]:
            value = remainder_selectivity(length, pos, n)
            assert 0.0 <= value <= 1.0


class TestAnyOccurrence:
    def test_empty_is_zero(self):
        assert any_occurrence_probability([]) == 0.0

    def test_single(self):
        assert any_occurrence_probability([0.3]) == pytest.approx(0.3)

    def test_independence_product(self):
        value = any_occurrence_probability([0.5, 0.5])
        assert value == pytest.approx(0.75)

    def test_certain_occurrence_dominates(self):
        assert any_occurrence_probability([0.1, 1.0, 0.2]) == pytest.approx(1.0)

    def test_values_clamped(self):
        assert any_occurrence_probability([2.0]) == pytest.approx(1.0)
        assert any_occurrence_probability([-1.0]) == pytest.approx(0.0)
