"""Round-trip tests for index persistence."""

import numpy as np
import pytest

from repro.core.algorithms import TopKProcessor
from repro.storage.serialization import load_index, save_index



class TestRoundTrip:
    def test_preserves_structure(self, tmp_path, small_index):
        index, terms = small_index
        path = tmp_path / "index.npz"
        save_index(index, path)
        loaded = load_index(path)
        assert loaded.num_docs == index.num_docs
        assert set(loaded.terms) == set(index.terms)
        for term in terms:
            original = index.list_for(term)
            restored = loaded.list_for(term)
            assert len(restored) == len(original)
            assert restored.block_size == original.block_size
            assert np.array_equal(
                restored.doc_ids_by_rank, original.doc_ids_by_rank
            )
            assert np.allclose(
                restored.scores_by_rank, original.scores_by_rank
            )

    def test_queries_identical_after_reload(self, tmp_path, small_index):
        index, terms = small_index
        path = tmp_path / "index.npz"
        save_index(index, path)
        loaded = load_index(path)
        before = TopKProcessor(index, cost_ratio=100).query(terms, 10)
        after = TopKProcessor(loaded, cost_ratio=100).query(terms, 10)
        assert before.doc_ids == after.doc_ids
        assert before.stats.cost == after.stats.cost

    def test_mixed_block_sizes(self, tmp_path):
        from repro.storage.block_index import IndexList, InvertedBlockIndex

        lists = {
            "a": IndexList("a", [1, 2, 3], [0.9, 0.5, 0.1], block_size=2),
            "b": IndexList("b", [4, 5], [0.8, 0.3], block_size=8),
        }
        index = InvertedBlockIndex(lists, num_docs=10)
        path = tmp_path / "mixed.npz"
        save_index(index, path)
        loaded = load_index(path)
        assert loaded.list_for("a").block_size == 2
        assert loaded.list_for("b").block_size == 8

    def test_empty_index(self, tmp_path):
        from repro.storage.block_index import InvertedBlockIndex

        index = InvertedBlockIndex({}, num_docs=5)
        path = tmp_path / "empty.npz"
        save_index(index, path)
        loaded = load_index(path)
        assert len(loaded) == 0
        assert loaded.num_docs == 5

    def test_version_check(self, tmp_path, small_index):
        import json

        import numpy as np

        index, _ = small_index
        path = tmp_path / "bad.npz"
        metadata = {"format_version": 99, "num_docs": 1, "terms": [],
                    "block_sizes": []}
        with path.open("wb") as handle:
            np.savez_compressed(
                handle,
                metadata=np.frombuffer(
                    json.dumps(metadata).encode(), dtype=np.uint8
                ),
            )
        with pytest.raises(ValueError):
            load_index(path)
