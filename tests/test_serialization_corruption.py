"""Integrity tests for the on-disk index formats (satellite c).

Round-trips must verify checksums; truncated or bit-flipped files must
surface as typed :class:`IndexCorruptionError`, never as garbage scores.
Covers both the checksummed npz archive (v2) and the mmap-able block
layout (v3) that the process-backend shard workers load zero-copy —
the v3 CRC harness must reject a bit flip anywhere in a mapped segment
exactly like the in-memory v2 path does.
"""

import json
import zlib

import numpy as np
import pytest

from repro.storage.faults import IndexCorruptionError
from repro.storage.serialization import (
    FORMAT_VERSION,
    MMAP_FORMAT_VERSION,
    MMAP_MAGIC,
    UnsupportedFormatError,
    load_index,
    save_index,
)

from tests.helpers import make_random_index


@pytest.fixture
def saved(tmp_path):
    index, terms = make_random_index(num_lists=3, list_length=200, seed=21)
    path = tmp_path / "index.npz"
    save_index(index, path)
    return index, terms, path


def test_round_trip_verifies_clean(saved):
    index, terms, path = saved
    loaded = load_index(path)
    assert loaded.num_docs == index.num_docs
    assert loaded.terms == index.terms
    for term in terms:
        original = index.list_for(term)
        restored = loaded.list_for(term)
        assert np.array_equal(original.doc_ids_by_rank,
                              restored.doc_ids_by_rank)
        assert np.array_equal(original.scores_by_rank,
                              restored.scores_by_rank)
        for block in range(original.num_blocks):
            assert original.block_checksum(block) == \
                   restored.block_checksum(block)


def test_truncated_file_raises_corruption_error(saved):
    _, _, path = saved
    payload = path.read_bytes()
    for keep in (len(payload) // 2, len(payload) - 7, 100):
        path.write_bytes(payload[:keep])
        with pytest.raises(IndexCorruptionError):
            load_index(path)


def test_bit_flipped_file_raises_corruption_error(saved):
    _, _, path = saved
    payload = bytearray(path.read_bytes())
    rng = np.random.default_rng(4)
    flipped = 0
    for _ in range(64):
        position = int(rng.integers(256, len(payload)))
        corrupted = bytearray(payload)
        corrupted[position] ^= 1 << int(rng.integers(8))
        path.write_bytes(bytes(corrupted))
        try:
            load_index(path)
        except IndexCorruptionError:
            flipped += 1
    # Some flips land in zip padding/names and are harmless; the point is
    # that every *detected* problem is the typed error (no other exception
    # escapes, or the pytest.raises-free try above would have failed) and
    # that flips are in fact routinely detected.
    assert flipped > 0


def test_empty_file_raises_corruption_error(tmp_path):
    path = tmp_path / "empty.npz"
    path.write_bytes(b"")
    with pytest.raises(IndexCorruptionError):
        load_index(path)


def test_missing_file_raises_file_not_found(tmp_path):
    with pytest.raises(FileNotFoundError):
        load_index(tmp_path / "nope.npz")


def test_unknown_version_raises_unsupported(saved, tmp_path):
    import json
    _, _, path = saved
    with np.load(path) as archive:
        arrays = {name: archive[name] for name in archive.files}
    metadata = json.loads(bytes(arrays["metadata"]).decode("utf-8"))
    metadata["format_version"] = FORMAT_VERSION + 97
    arrays["metadata"] = np.frombuffer(
        json.dumps(metadata).encode("utf-8"), dtype=np.uint8
    )
    future = tmp_path / "future.npz"
    with future.open("wb") as handle:
        np.savez_compressed(handle, **arrays)
    with pytest.raises(UnsupportedFormatError):
        load_index(future)


def test_version1_file_without_checksums_still_loads(saved, tmp_path):
    import json
    index, _, path = saved
    with np.load(path) as archive:
        arrays = {name: archive[name] for name in archive.files}
    metadata = json.loads(bytes(arrays["metadata"]).decode("utf-8"))
    metadata["format_version"] = 1
    arrays["metadata"] = np.frombuffer(
        json.dumps(metadata).encode("utf-8"), dtype=np.uint8
    )
    for name in list(arrays):
        if name.startswith("crc_"):
            del arrays[name]
    legacy = tmp_path / "legacy.npz"
    with legacy.open("wb") as handle:
        np.savez_compressed(handle, **arrays)
    loaded = load_index(legacy)
    assert loaded.terms == index.terms


def test_stale_checksum_table_raises(saved, tmp_path):
    _, _, path = saved
    with np.load(path) as archive:
        arrays = {name: archive[name] for name in archive.files}
    crcs = arrays["crc_0"].copy()
    crcs[0] ^= np.uint64(0xDEADBEEF)
    arrays["crc_0"] = crcs
    tampered = tmp_path / "tampered.npz"
    with tampered.open("wb") as handle:
        np.savez_compressed(handle, **arrays)
    with pytest.raises(IndexCorruptionError, match="checksum mismatch"):
        load_index(tampered)


# ----------------------------------------------------------------------
# The v3 mmap layout
# ----------------------------------------------------------------------

_PREAMBLE = len(MMAP_MAGIC) + 8 + 4  # magic + header length + header CRC


@pytest.fixture
def mmap_saved(tmp_path):
    index, terms = make_random_index(num_lists=3, list_length=200, seed=21)
    path = tmp_path / "index.idx"
    save_index(index, path, layout="mmap")
    return index, terms, path


def _read_header(path):
    payload = path.read_bytes()
    header_len = int.from_bytes(payload[len(MMAP_MAGIC):len(MMAP_MAGIC) + 8],
                                "little")
    header = json.loads(payload[_PREAMBLE:_PREAMBLE + header_len])
    return payload, header_len, header


def _rewrite_header(path, payload, header):
    """Splice a tampered header back in with a *valid* header CRC.

    Only same-length rewrites are supported (segment offsets recorded in
    the header would otherwise go stale); the canonical JSON encoding
    makes length-preserving tweaks easy.
    """
    encoded = json.dumps(header, sort_keys=True,
                         separators=(",", ":")).encode("utf-8")
    old_len = int.from_bytes(payload[len(MMAP_MAGIC):len(MMAP_MAGIC) + 8],
                             "little")
    assert len(encoded) == old_len, "tweak must preserve header length"
    path.write_bytes(
        MMAP_MAGIC
        + len(encoded).to_bytes(8, "little")
        + zlib.crc32(encoded).to_bytes(4, "little")
        + encoded
        + payload[_PREAMBLE + old_len:]
    )


def test_mmap_round_trip_equals_source(mmap_saved):
    index, terms, path = mmap_saved
    loaded = load_index(path)
    assert loaded.num_docs == index.num_docs
    assert loaded.terms == index.terms
    for term in terms:
        original = index.list_for(term)
        restored = loaded.list_for(term)
        assert np.array_equal(original.doc_ids_by_rank,
                              restored.doc_ids_by_rank)
        assert np.array_equal(original.scores_by_rank,
                              restored.scores_by_rank)
        assert original.block_size == restored.block_size
        for block in range(original.num_blocks):
            assert original.block_checksum(block) == \
                   restored.block_checksum(block)


def test_mmap_load_is_zero_copy(mmap_saved):
    _, terms, path = mmap_saved
    loaded = load_index(path)
    import mmap as mmap_module

    for term in terms:
        array = loaded.list_for(term).doc_ids_by_rank
        # A view of a memmap stays a memmap; its buffer chain must end
        # at the OS-level mapping, not a heap copy.
        assert isinstance(array, np.memmap)
        base = array
        while getattr(base, "base", None) is not None:
            base = base.base
        assert isinstance(base, mmap_module.mmap)


def test_mmap_resave_is_byte_identical(mmap_saved, tmp_path):
    """Deterministic writer + lossless loader: save(load(f)) == f."""
    _, _, path = mmap_saved
    again = tmp_path / "again.idx"
    save_index(load_index(path), again, layout="mmap")
    assert again.read_bytes() == path.read_bytes()


def test_mmap_and_npz_layouts_agree(mmap_saved, tmp_path):
    index, terms, path = mmap_saved
    npz_path = tmp_path / "same.npz"
    save_index(index, npz_path)  # default npz layout
    from_mmap = load_index(path)
    from_npz = load_index(npz_path)
    for term in terms:
        assert np.array_equal(from_mmap.list_for(term).scores_by_rank,
                              from_npz.list_for(term).scores_by_rank)


def test_unknown_layout_rejected(mmap_saved, tmp_path):
    index, _, _ = mmap_saved
    with pytest.raises(ValueError, match="layout"):
        save_index(index, tmp_path / "x.idx", layout="columnar")


def test_mmap_segment_bit_flip_always_detected(mmap_saved):
    """A flip inside any mapped segment must raise the typed error.

    Stronger than the npz test's "routinely detected": every byte of
    every segment is covered by a segment CRC, so detection inside
    segments is certain, not probabilistic (only alignment padding is
    uncovered, and padding never feeds a score).
    """
    _, _, path = mmap_saved
    payload, _, header = _read_header(path)
    rng = np.random.default_rng(7)
    flips = 0
    for entry in header["lists"]:
        for name, segment in entry["segments"].items():
            size = segment["count"] * 8  # all six columns are 8-byte types
            position = segment["offset"] + int(rng.integers(size))
            corrupted = bytearray(payload)
            corrupted[position] ^= 1 << int(rng.integers(8))
            path.write_bytes(bytes(corrupted))
            with pytest.raises(IndexCorruptionError):
                load_index(path)
            flips += 1
    assert flips == 3 * 6  # three lists, six columns each


def test_mmap_truncation_raises(mmap_saved):
    _, _, path = mmap_saved
    payload = path.read_bytes()
    for keep in (len(payload) // 2, len(payload) - 7, _PREAMBLE + 3, 4):
        path.write_bytes(payload[:keep])
        with pytest.raises(IndexCorruptionError):
            load_index(path)


def test_mmap_header_bit_flip_raises(mmap_saved):
    _, _, path = mmap_saved
    payload = bytearray(path.read_bytes())
    payload[_PREAMBLE + 5] ^= 0x40  # inside the JSON header
    path.write_bytes(bytes(payload))
    with pytest.raises(IndexCorruptionError):
        load_index(path)


def test_mmap_future_version_raises_unsupported(mmap_saved):
    _, _, path = mmap_saved
    payload, _, header = _read_header(path)
    header["format_version"] = MMAP_FORMAT_VERSION + 1  # same digit count
    _rewrite_header(path, payload, header)
    with pytest.raises(UnsupportedFormatError):
        load_index(path)


def test_mmap_stale_block_crc_raises(mmap_saved):
    """Tampered per-block CRC table → block verification must fire."""
    _, _, path = mmap_saved
    payload, _, header = _read_header(path)
    crc = header["lists"][0]["block_crcs"][0]
    header["lists"][0]["block_crcs"][0] = crc ^ 1  # same decimal width
    _rewrite_header(path, payload, header)
    with pytest.raises(IndexCorruptionError, match="checksum"):
        load_index(path)


def test_mmap_query_parity_with_in_memory_index(mmap_saved):
    """Queries over the mapped index equal queries over the source."""
    from repro.core.session import QuerySession

    index, terms, path = mmap_saved
    loaded = load_index(path)
    expected = QuerySession(index).run(terms, 10)
    actual = QuerySession(loaded).run(terms, 10)
    assert [i.doc_id for i in actual.items] == \
           [i.doc_id for i in expected.items]
    assert [i.worstscore for i in actual.items] == \
           [i.worstscore for i in expected.items]
    assert (actual.stats.sorted_accesses, actual.stats.random_accesses,
            actual.stats.cost) == \
           (expected.stats.sorted_accesses, expected.stats.random_accesses,
            expected.stats.cost)
