"""Integrity tests for the on-disk index format (satellite c).

Round-trips must verify checksums; truncated or bit-flipped files must
surface as typed :class:`IndexCorruptionError`, never as garbage scores.
"""

import numpy as np
import pytest

from repro.storage.faults import IndexCorruptionError
from repro.storage.serialization import (
    FORMAT_VERSION,
    UnsupportedFormatError,
    load_index,
    save_index,
)

from tests.helpers import make_random_index


@pytest.fixture
def saved(tmp_path):
    index, terms = make_random_index(num_lists=3, list_length=200, seed=21)
    path = tmp_path / "index.npz"
    save_index(index, path)
    return index, terms, path


def test_round_trip_verifies_clean(saved):
    index, terms, path = saved
    loaded = load_index(path)
    assert loaded.num_docs == index.num_docs
    assert loaded.terms == index.terms
    for term in terms:
        original = index.list_for(term)
        restored = loaded.list_for(term)
        assert np.array_equal(original.doc_ids_by_rank,
                              restored.doc_ids_by_rank)
        assert np.array_equal(original.scores_by_rank,
                              restored.scores_by_rank)
        for block in range(original.num_blocks):
            assert original.block_checksum(block) == \
                   restored.block_checksum(block)


def test_truncated_file_raises_corruption_error(saved):
    _, _, path = saved
    payload = path.read_bytes()
    for keep in (len(payload) // 2, len(payload) - 7, 100):
        path.write_bytes(payload[:keep])
        with pytest.raises(IndexCorruptionError):
            load_index(path)


def test_bit_flipped_file_raises_corruption_error(saved):
    _, _, path = saved
    payload = bytearray(path.read_bytes())
    rng = np.random.default_rng(4)
    flipped = 0
    for _ in range(64):
        position = int(rng.integers(256, len(payload)))
        corrupted = bytearray(payload)
        corrupted[position] ^= 1 << int(rng.integers(8))
        path.write_bytes(bytes(corrupted))
        try:
            load_index(path)
        except IndexCorruptionError:
            flipped += 1
    # Some flips land in zip padding/names and are harmless; the point is
    # that every *detected* problem is the typed error (no other exception
    # escapes, or the pytest.raises-free try above would have failed) and
    # that flips are in fact routinely detected.
    assert flipped > 0


def test_empty_file_raises_corruption_error(tmp_path):
    path = tmp_path / "empty.npz"
    path.write_bytes(b"")
    with pytest.raises(IndexCorruptionError):
        load_index(path)


def test_missing_file_raises_file_not_found(tmp_path):
    with pytest.raises(FileNotFoundError):
        load_index(tmp_path / "nope.npz")


def test_unknown_version_raises_unsupported(saved, tmp_path):
    import json
    _, _, path = saved
    with np.load(path) as archive:
        arrays = {name: archive[name] for name in archive.files}
    metadata = json.loads(bytes(arrays["metadata"]).decode("utf-8"))
    metadata["format_version"] = FORMAT_VERSION + 97
    arrays["metadata"] = np.frombuffer(
        json.dumps(metadata).encode("utf-8"), dtype=np.uint8
    )
    future = tmp_path / "future.npz"
    with future.open("wb") as handle:
        np.savez_compressed(handle, **arrays)
    with pytest.raises(UnsupportedFormatError):
        load_index(future)


def test_version1_file_without_checksums_still_loads(saved, tmp_path):
    import json
    index, _, path = saved
    with np.load(path) as archive:
        arrays = {name: archive[name] for name in archive.files}
    metadata = json.loads(bytes(arrays["metadata"]).decode("utf-8"))
    metadata["format_version"] = 1
    arrays["metadata"] = np.frombuffer(
        json.dumps(metadata).encode("utf-8"), dtype=np.uint8
    )
    for name in list(arrays):
        if name.startswith("crc_"):
            del arrays[name]
    legacy = tmp_path / "legacy.npz"
    with legacy.open("wb") as handle:
        np.savez_compressed(handle, **arrays)
    loaded = load_index(legacy)
    assert loaded.terms == index.terms


def test_stale_checksum_table_raises(saved, tmp_path):
    _, _, path = saved
    with np.load(path) as archive:
        arrays = {name: archive[name] for name in archive.files}
    crcs = arrays["crc_0"].copy()
    crcs[0] ^= np.uint64(0xDEADBEEF)
    arrays["crc_0"] = crcs
    tampered = tmp_path / "tampered.npz"
    with tampered.open("wb") as handle:
        np.savez_compressed(handle, **arrays)
    with pytest.raises(IndexCorruptionError, match="checksum mismatch"):
        load_index(tampered)
