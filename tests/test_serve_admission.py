"""Unit tests for the admission controller and the hysteresis shedder."""

import pytest

from repro.serve.admission import (
    CLASS_HEAVY,
    CLASS_LIGHT,
    AdmissionController,
)
from repro.serve.shedding import (
    LEVEL_DEGRADE,
    LEVEL_NORMAL,
    LEVEL_REJECT,
    HysteresisShedder,
    ShedConfig,
)


def make_controller(**kwargs):
    defaults = dict(
        max_queue=4,
        max_concurrency=2,
        backlog_budget_ms=100.0,
        initial_service_ms=10.0,
    )
    defaults.update(kwargs)
    return AdmissionController(**defaults)


class TestAdmissionController:
    def test_validates_configuration(self):
        with pytest.raises(ValueError):
            make_controller(max_queue=-1)
        with pytest.raises(ValueError):
            make_controller(max_concurrency=0)
        with pytest.raises(ValueError):
            make_controller(backlog_budget_ms=0.0)
        with pytest.raises(ValueError):
            make_controller(ewma_alpha=0.0)

    def test_admits_when_idle(self):
        ctrl = make_controller()
        decision = ctrl.admit(cost_estimate=10.0)
        assert decision.admitted
        assert decision.reason == "ok"
        assert decision.cost_class == CLASS_LIGHT

    def test_classify_heavy(self):
        ctrl = make_controller(heavy_cost_threshold=100.0)
        assert ctrl.classify(99.9) == CLASS_LIGHT
        assert ctrl.classify(100.0) == CLASS_HEAVY
        assert ctrl.admit(cost_estimate=500.0).cost_class == CLASS_HEAVY

    def test_queue_full_rejection(self):
        ctrl = make_controller(max_queue=2)
        ctrl.note_enqueued()
        ctrl.note_enqueued()
        decision = ctrl.admit()
        assert not decision.admitted
        assert decision.reason == "queue_full"
        assert decision.retry_after_s > 0
        assert ctrl.rejected_queue_full == 1

    def test_zero_queue_rejects_everything(self):
        ctrl = make_controller(max_queue=0)
        assert not ctrl.admit().admitted

    def test_backlog_rejection_uses_ewma(self):
        # 2 slots, 100 ms budget, 50 ms EWMA: six pending requests put
        # the next arrival ~125 ms out, over budget.
        ctrl = make_controller(
            max_queue=100, max_concurrency=2,
            backlog_budget_ms=100.0, initial_service_ms=50.0,
        )
        for _ in range(2):
            ctrl.note_enqueued()
            ctrl.note_started()
        for _ in range(4):
            ctrl.note_enqueued()
        decision = ctrl.admit()
        assert not decision.admitted
        assert decision.reason == "backlog"
        assert ctrl.rejected_backlog == 1

    def test_backlog_estimate_shape(self):
        ctrl = make_controller(max_concurrency=2, initial_service_ms=10.0)
        # Nothing pending: a new arrival waits zero.
        assert ctrl.backlog_ms() == 0.0
        ctrl.note_enqueued()
        ctrl.note_started()
        # One in flight, one free slot: still zero wait.
        assert ctrl.backlog_ms() == 0.0
        ctrl.note_enqueued()
        ctrl.note_started()
        # Both slots busy: the new arrival waits ~one service time / slots.
        assert ctrl.backlog_ms() == pytest.approx(5.0)

    def test_lifecycle_updates_ewma(self):
        ctrl = make_controller(initial_service_ms=10.0)
        ctrl.note_enqueued()
        ctrl.note_started()
        ctrl.note_finished(110.0)
        assert ctrl.waiting == 0
        assert ctrl.in_flight == 0
        assert ctrl.completed == 1
        # alpha 0.2: 10 + 0.2 * (110 - 10) = 30.
        assert ctrl.ewma_service_ms == pytest.approx(30.0)

    def test_abandoned_restores_queue_slot(self):
        ctrl = make_controller()
        ctrl.note_enqueued()
        ctrl.note_abandoned()
        assert ctrl.waiting == 0

    def test_pressure_tracks_worst_budget(self):
        ctrl = make_controller(max_queue=4, backlog_budget_ms=100.0)
        assert ctrl.pressure() == 0.0
        ctrl.note_enqueued()
        ctrl.note_enqueued()
        assert ctrl.pressure() >= 0.5  # queue half full

    def test_retry_after_is_at_least_one_service_time(self):
        ctrl = make_controller(initial_service_ms=10.0)
        hint = ctrl.retry_after_hint()
        assert hint >= 0.01
        # Rounded up to tenths of a second.
        assert abs(hint * 10 - round(hint * 10)) < 1e-9

    def test_snapshot_keys(self):
        snap = make_controller().snapshot()
        for key in (
            "waiting", "in_flight", "completed", "rejected_queue_full",
            "rejected_backlog", "ewma_service_ms", "backlog_ms", "pressure",
        ):
            assert key in snap


class TestShedConfig:
    def test_rejects_inverted_watermarks(self):
        with pytest.raises(ValueError):
            ShedConfig(enter_degrade=0.2, exit_degrade=0.3)
        with pytest.raises(ValueError):
            ShedConfig(enter_reject=0.4, exit_reject=0.5)
        with pytest.raises(ValueError):
            ShedConfig(enter_degrade=1.5, enter_reject=1.0)
        with pytest.raises(ValueError):
            ShedConfig(tighten_factor=0.0)
        with pytest.raises(ValueError):
            ShedConfig(heavy_tighten_factor=2.0)


class TestHysteresisShedder:
    def make(self):
        return HysteresisShedder(
            ShedConfig(
                enter_degrade=0.5, exit_degrade=0.25,
                enter_reject=1.0, exit_reject=0.5,
            )
        )

    def test_starts_normal(self):
        assert self.make().level == LEVEL_NORMAL

    def test_enters_degrade_at_watermark(self):
        shedder = self.make()
        assert shedder.observe(0.49) == LEVEL_NORMAL
        assert shedder.observe(0.5) == LEVEL_DEGRADE
        assert shedder.transitions[LEVEL_DEGRADE] == 1

    def test_hysteresis_keeps_degrade_until_exit(self):
        shedder = self.make()
        shedder.observe(0.6)
        # Below the enter watermark but above exit: still degrading.
        assert shedder.observe(0.3) == LEVEL_DEGRADE
        assert shedder.observe(0.26) == LEVEL_DEGRADE
        assert shedder.observe(0.24) == LEVEL_NORMAL

    def test_jumps_straight_to_reject(self):
        shedder = self.make()
        assert shedder.observe(1.2) == LEVEL_REJECT
        assert shedder.transitions[LEVEL_REJECT] == 1

    def test_reject_steps_down_through_degrade(self):
        shedder = self.make()
        shedder.observe(1.5)
        # Above exit_reject: hold.
        assert shedder.observe(0.7) == LEVEL_REJECT
        # Below exit_reject but above exit_degrade: drain under degrade.
        assert shedder.observe(0.4) == LEVEL_DEGRADE
        assert shedder.observe(0.1) == LEVEL_NORMAL

    def test_reject_drops_to_normal_when_fully_drained(self):
        shedder = self.make()
        shedder.observe(1.5)
        assert shedder.observe(0.0) == LEVEL_NORMAL

    def test_reentry_counts_transitions(self):
        shedder = self.make()
        shedder.observe(0.6)
        shedder.observe(0.1)
        shedder.observe(0.6)
        assert shedder.transitions[LEVEL_DEGRADE] == 2
