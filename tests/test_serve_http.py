"""Unit tests for the minimal HTTP layer under the query service."""

import asyncio

import pytest

from repro.serve.http import (
    HttpProtocolError,
    read_request,
    render_response,
)


def parse(data: bytes, max_body: int = 65536):
    async def go():
        reader = asyncio.StreamReader()
        reader.feed_data(data)
        reader.feed_eof()
        return await read_request(reader, max_body)

    return asyncio.run(go())


class TestReadRequest:
    def test_get_without_body(self):
        request = parse(b"GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n")
        assert request.method == "GET"
        assert request.path == "/healthz"
        assert request.headers["host"] == "x"
        assert request.body == b""
        assert request.keep_alive

    def test_post_with_body_and_query_string(self):
        request = parse(
            b"POST /query?x=1 HTTP/1.1\r\nContent-Length: 4\r\n\r\nabcd"
        )
        assert request.method == "POST"
        assert request.path == "/query"
        assert request.body == b"abcd"

    def test_header_names_lowercased(self):
        request = parse(b"GET / HTTP/1.1\r\nX-Custom-Thing:  v  \r\n\r\n")
        assert request.headers["x-custom-thing"] == "v"

    def test_connection_close_disables_keep_alive(self):
        request = parse(b"GET / HTTP/1.1\r\nConnection: close\r\n\r\n")
        assert not request.keep_alive

    def test_clean_eof_returns_none(self):
        assert parse(b"") is None

    def test_truncated_head_is_400(self):
        with pytest.raises(HttpProtocolError) as excinfo:
            parse(b"GET / HTTP/1.1\r\nHost")
        assert excinfo.value.status == 400

    def test_malformed_request_line_is_400(self):
        with pytest.raises(HttpProtocolError) as excinfo:
            parse(b"GARBAGE\r\n\r\n")
        assert excinfo.value.status == 400

    def test_chunked_transfer_is_501(self):
        with pytest.raises(HttpProtocolError) as excinfo:
            parse(
                b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"
            )
        assert excinfo.value.status == 501

    def test_bad_content_length_is_400(self):
        with pytest.raises(HttpProtocolError) as excinfo:
            parse(b"POST / HTTP/1.1\r\nContent-Length: nope\r\n\r\n")
        assert excinfo.value.status == 400

    def test_oversized_body_is_413(self):
        with pytest.raises(HttpProtocolError) as excinfo:
            parse(
                b"POST / HTTP/1.1\r\nContent-Length: 100\r\n\r\n" + b"x" * 100,
                max_body=10,
            )
        assert excinfo.value.status == 413

    def test_truncated_body_is_400(self):
        with pytest.raises(HttpProtocolError) as excinfo:
            parse(b"POST / HTTP/1.1\r\nContent-Length: 10\r\n\r\nab")
        assert excinfo.value.status == 400


class TestRenderResponse:
    def test_status_line_and_framing(self):
        payload = render_response(200, b'{"ok":1}')
        text = payload.decode()
        assert text.startswith("HTTP/1.1 200 OK\r\n")
        assert "Content-Length: 8" in text
        assert text.endswith('\r\n\r\n{"ok":1}')

    def test_extra_headers_and_close(self):
        payload = render_response(
            429,
            b"{}",
            keep_alive=False,
            extra_headers=(("Retry-After", "1.5"),),
        )
        text = payload.decode()
        assert "HTTP/1.1 429 Too Many Requests" in text
        assert "Retry-After: 1.5" in text
        assert "Connection: close" in text

    def test_roundtrips_through_parser(self):
        # A rendered response body with a request wrapper parses back.
        body = b'{"terms":["a"],"k":3}'
        request = parse(
            b"POST /query HTTP/1.1\r\nContent-Length: "
            + str(len(body)).encode()
            + b"\r\n\r\n"
            + body
        )
        assert request.body == body
