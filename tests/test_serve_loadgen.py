"""Tests for the traffic-replay load driver and its CI gate."""

import asyncio

import pytest

from repro.core.session import QuerySession
from repro.data.httplog import TraceRequest, generate_trace, generate_workload
from repro.serve.loadgen import (
    RequestOutcome,
    _check_response,
    gate,
    percentile,
    replay_closed,
    replay_open,
    summarize,
)
from repro.serve.service import QueryService, ServiceConfig

REQ = TraceRequest(user=3, terms=("day:00", "day:01"), k=5)


class TestPercentile:
    def test_empty_is_zero(self):
        assert percentile([], 99) == 0.0

    def test_nearest_rank(self):
        values = [10.0, 20.0, 30.0, 40.0]
        assert percentile(values, 50) == 20.0
        assert percentile(values, 99) == 40.0
        assert percentile(values, 1) == 10.0


class TestCheckResponse:
    def ok_body(self, **overrides):
        body = {
            "items": [{"doc_id": 1, "worstscore": 0.4, "bestscore": 0.6}],
            "degraded": False,
            "degrade_reason": None,
        }
        body.update(overrides)
        return body

    def check(self, status, body, headers=None):
        import json

        return _check_response(
            REQ, status, headers or {}, json.dumps(body).encode(), 1.0
        )

    def test_well_formed_200(self):
        assert self.check(200, self.ok_body()).malformed is None

    def test_non_json_body(self):
        outcome = _check_response(REQ, 200, {}, b"<html>", 1.0)
        assert outcome.malformed == "body is not JSON"

    def test_inverted_interval(self):
        body = self.ok_body(
            items=[{"doc_id": 1, "worstscore": 0.9, "bestscore": 0.2}]
        )
        assert self.check(200, body).malformed == "malformed result item"

    def test_more_than_k_items(self):
        item = {"doc_id": 1, "worstscore": 0.1, "bestscore": 0.2}
        body = self.ok_body(items=[item] * (REQ.k + 1))
        assert self.check(200, body).malformed == "more than k items"

    def test_degraded_flag_must_match_status(self):
        assert (
            self.check(200, self.ok_body(degraded=True)).malformed
            == "degraded flag does not match status"
        )

    def test_206_requires_degrade_reason(self):
        body = self.ok_body(degraded=True, degrade_reason=None)
        assert (
            self.check(206, body).malformed == "206 without degrade_reason"
        )
        good = self.ok_body(degraded=True, degrade_reason="deadline")
        outcome = self.check(206, good)
        assert outcome.malformed is None
        assert outcome.degraded
        assert outcome.degrade_reason == "deadline"

    def test_429_contract(self):
        assert (
            self.check(429, {"nope": 1}).malformed
            == "429 without error envelope"
        )
        assert (
            self.check(429, {"error": {"code": "overloaded"}}).malformed
            == "429 without Retry-After"
        )
        outcome = self.check(
            429, {"error": {"code": "overloaded"}}, {"retry-after": "0.5"}
        )
        assert outcome.malformed is None
        assert outcome.shed

    def test_unexpected_status(self):
        assert self.check(302, {}).malformed == "unexpected status 302"


def outcome(status, latency=10.0, **kwargs):
    return RequestOutcome(user=0, status=status, latency_ms=latency, **kwargs)


class TestSummarize:
    def test_aggregates(self):
        outcomes = [
            outcome(200, 10.0),
            outcome(206, 20.0, degraded=True, degrade_reason="shed"),
            outcome(429, 1.0, shed=True),
            outcome(400, 1.0),
        ]
        summary = summarize(outcomes, "unit", mode="open")
        assert summary["requests"] == 4
        assert summary["admitted"] == 2
        assert summary["shed"] == 1
        assert summary["degraded"] == 1
        assert summary["degraded_rate"] == 0.5
        assert summary["degrade_reasons"] == {"shed": 1}
        assert summary["statuses"] == {"200": 1, "206": 1, "429": 1, "400": 1}
        assert summary["server_errors"] == 0
        assert summary["malformed"] == 0
        assert summary["latency_ms"]["p50"] == 10.0
        assert summary["mode"] == "open"


def make_report(**scenario_overrides):
    scenario = {
        "label": "open-2.5x",
        "rate_multiplier": 2.5,
        "malformed": 0,
        "malformed_reasons": [],
        "server_errors": 0,
        "shed": 5,
        "degraded": 5,
        "admitted": 50,
        "latency_ms": {"p99": 100.0},
    }
    scenario.update(scenario_overrides)
    return {
        "service": {
            "backlog_budget_ms": 500.0,
            "default_deadline_ms": 250.0,
        },
        "scenarios": [scenario],
    }


class TestGate:
    def test_passes_clean_report(self):
        assert gate(make_report()) == []

    def test_flags_malformed_and_5xx(self):
        report = make_report(
            malformed=2, malformed_reasons=["bad"], server_errors=1
        )
        violations = gate(report)
        assert any("malformed" in v for v in violations)
        assert any("server errors" in v for v in violations)

    def test_flags_unbounded_p99(self):
        report = make_report(latency_ms={"p99": 10_000.0})
        assert any("p99" in v for v in gate(report))

    def test_overload_must_shed_and_degrade(self):
        violations = gate(make_report(shed=0, degraded=0, admitted=0))
        assert any("did not shed" in v for v in violations)
        assert any("did not degrade" in v for v in violations)
        assert any("admitted nothing" in v for v in violations)

    def test_non_overload_scenarios_may_skip_shedding(self):
        report = make_report(
            label="open-0.5x", rate_multiplier=0.5, shed=0, degraded=0
        )
        assert gate(report) == []


@pytest.fixture(scope="module")
def served_workload():
    workload = generate_workload(
        num_users=500, num_days=10, num_queries=8, block_size=64, seed=5
    )
    trace = generate_trace(workload, 24, seed=6)
    session = QuerySession(workload.index)
    session.stats_for(workload.index)
    return session, trace


class TestReplay:
    def replay(self, session, coroutine_factory):
        async def go():
            async with QueryService(
                session,
                ServiceConfig(max_concurrency=2, max_queue=8),
            ) as service:
                return await coroutine_factory(service.port)

        return asyncio.run(go())

    def test_open_loop_replay_is_well_formed(self, served_workload):
        session, trace = served_workload
        outcomes = self.replay(
            session,
            lambda port: replay_open("127.0.0.1", port, trace, 200.0, seed=1),
        )
        assert len(outcomes) == len(trace)
        assert [o.malformed for o in outcomes] == [None] * len(trace)
        assert all(o.status in (200, 206, 429) for o in outcomes)

    def test_closed_loop_replay_is_well_formed(self, served_workload):
        session, trace = served_workload
        outcomes = self.replay(
            session,
            lambda port: replay_closed("127.0.0.1", port, trace, 4),
        )
        assert len(outcomes) == len(trace)
        assert [o.malformed for o in outcomes] == [None] * len(trace)

    def test_open_loop_rejects_bad_rate(self, served_workload):
        session, trace = served_workload
        with pytest.raises(ValueError):
            asyncio.run(replay_open("127.0.0.1", 1, trace, 0.0))

    def test_trace_is_seeded_and_heavy_tailed(self, served_workload):
        _, trace = served_workload
        workload = generate_workload(
            num_users=500, num_days=10, num_queries=8, block_size=64, seed=5
        )
        again = generate_trace(workload, 24, seed=6)
        assert again == trace
        assert all(req.k in (5, 10, 20) for req in trace)
