"""End-to-end tests for the asyncio query service.

Each test boots a real :class:`QueryService` on an ephemeral port inside
``asyncio.run`` and speaks raw HTTP to it, so the full stack — framing,
admission, shedding, engine dispatch, rendering — is exercised exactly
as a client sees it.
"""

import asyncio
import json
import threading

import pytest

from repro.core.results import (
    DEGRADE_DEADLINE,
    RankedItem,
    TopKResult,
)
from repro.core.session import QuerySession, ShardedSession
from repro.distrib.coordinator import ShardedExecutionError
from repro.distrib.degrade import ShardFailure
from repro.serve.loadgen import _read_response
from repro.serve.service import QueryService, ServiceConfig
from repro.serve.shedding import ShedConfig

from tests.helpers import make_random_index

TERMS = ["t0", "t1", "t2"]
K = 5

#: Watermarks far above any pressure these tests generate, so admission
#: outcomes (queue_full, backlog) are observable without the shedder
#: intervening first.
NO_SHED = ShedConfig(
    enter_degrade=50.0, exit_degrade=25.0,
    enter_reject=100.0, exit_reject=50.0,
)


async def raw_request(port, data: bytes):
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    writer.write(data)
    await writer.drain()
    status, headers, body = await _read_response(reader)
    writer.close()
    try:
        await writer.wait_closed()
    except (ConnectionError, OSError):
        pass
    return status, headers, json.loads(body.decode())


async def request(port, payload=None, method="POST", path="/query",
                  body=None):
    if body is None:
        body = json.dumps(payload).encode() if payload is not None else b""
    head = (
        "%s %s HTTP/1.1\r\nHost: t\r\nContent-Length: %d\r\n"
        "Connection: close\r\n\r\n" % (method, path, len(body))
    )
    return await raw_request(port, head.encode() + body)


def serve(session, config, interact):
    """Boot a service, run the async ``interact(service)``, tear down."""

    async def go():
        async with QueryService(session, config) as service:
            return await interact(service)

    return asyncio.run(go())


@pytest.fixture(scope="module")
def index():
    built, _terms = make_random_index(
        num_lists=3, list_length=300, num_docs=800, block_size=32, seed=42
    )
    return built


@pytest.fixture(scope="module")
def engine(index):
    session = QuerySession(index)
    session.stats_for(index)
    return session


class StubSession:
    """A session returning (or raising) a fixed outcome per call."""

    def __init__(self, result=None, error=None):
        self.result = result if result is not None else TopKResult()
        self.error = error
        self.calls = []

    def run(self, terms, k, algorithm=None, weights=None, deadline=None,
            **extra):
        self.calls.append(
            {"terms": terms, "k": k, "algorithm": algorithm,
             "deadline": deadline, **extra}
        )
        if self.error is not None:
            raise self.error
        return self.result


class TestQueryPath:
    def test_exact_query_is_200_and_matches_oracle(self, engine):
        oracle = engine.run(TERMS, K)

        async def interact(service):
            return await request(service.port, {"terms": TERMS, "k": K})

        status, _, body = serve(engine, ServiceConfig(), interact)
        assert status == 200
        assert not body["degraded"]
        assert body["degrade_reason"] is None
        assert body["exhausted_lists"] == []
        assert [item["doc_id"] for item in body["items"]] == oracle.doc_ids
        for item, expect in zip(body["items"], oracle.items):
            assert item["worstscore"] == pytest.approx(expect.worstscore)
            assert item["bestscore"] == pytest.approx(expect.bestscore)
        assert body["stats"]["cost"] == pytest.approx(oracle.stats.cost)
        assert body["service"]["cost_class"] == "light"
        assert body["service"]["queue_wait_ms"] >= 0.0

    def test_tiny_cost_budget_degrades_to_206(self, engine):
        async def interact(service):
            return await request(
                service.port,
                {"terms": TERMS, "k": K, "cost_budget": 1},
            )

        status, _, body = serve(engine, ServiceConfig(), interact)
        assert status == 206
        assert body["degraded"]
        assert body["degrade_reason"] == DEGRADE_DEADLINE
        assert len(body["items"]) <= K
        for item in body["items"]:
            assert item["worstscore"] <= item["bestscore"] + 1e-9

    def test_sharded_session_reports_shard_fields(self, index, engine):
        sharded = ShardedSession(index, num_shards=2)
        oracle = engine.run(TERMS, K)

        async def interact(service):
            bounded = await request(service.port, {"terms": TERMS, "k": K})
            gather = await request(
                service.port, {"terms": TERMS, "k": K, "mode": "gather"}
            )
            metrics = await request(service.port, path="/metrics",
                                    method="GET")
            return bounded, gather, metrics

        bounded, gather, metrics = serve(sharded, ServiceConfig(), interact)
        # sharded sessions expose their execution backend in /metrics
        assert metrics[2]["engine"]["backend"] == "thread"
        for status, _, body in (bounded, gather):
            assert status == 200
            assert [i["doc_id"] for i in body["items"]] == oracle.doc_ids
            assert body["exhausted_shards"] == []
            assert body["unfinished_shards"] == []
            assert "pruned_shards" in body
            assert "coordinator_rounds" in body


class TestValidation:
    @pytest.mark.parametrize(
        "payload,code",
        [
            (None, "invalid_json"),
            ([1, 2], "invalid_json"),
            ({}, "invalid_query"),
            ({"terms": []}, "invalid_query"),
            ({"terms": "day:01"}, "invalid_query"),
            ({"terms": [1, 2]}, "invalid_query"),
            ({"terms": ["a"] * 99}, "invalid_query"),
            ({"terms": TERMS, "k": 0}, "invalid_query"),
            ({"terms": TERMS, "k": True}, "invalid_query"),
            ({"terms": TERMS, "k": 2.5}, "invalid_query"),
            ({"terms": TERMS, "k": 10**6}, "invalid_query"),
            ({"terms": TERMS, "weights": "heavy"}, "invalid_query"),
            ({"terms": TERMS, "deadline_ms": -5}, "invalid_query"),
            ({"terms": TERMS, "cost_budget": 0}, "invalid_query"),
            ({"terms": TERMS, "algorithm": 7}, "invalid_query"),
            ({"terms": TERMS, "mode": "gather"}, "invalid_query"),
        ],
    )
    def test_typed_400s(self, engine, payload, code):
        async def interact(service):
            return await request(service.port, payload)

        status, _, body = serve(engine, ServiceConfig(), interact)
        assert status == 400
        assert body["error"]["code"] == code

    def test_not_json_body_is_400(self, engine):
        async def interact(service):
            return await request(service.port, body=b"{not json")

        status, _, body = serve(engine, ServiceConfig(), interact)
        assert status == 400
        assert body["error"]["code"] == "invalid_json"

    def test_unknown_algorithm_maps_to_400(self, engine):
        async def interact(service):
            return await request(
                service.port, {"terms": TERMS, "algorithm": "NOPE"}
            )

        status, _, body = serve(engine, ServiceConfig(), interact)
        assert status == 400
        assert body["error"]["code"] == "invalid_query"

    def test_invalid_mode_on_sharded_session_is_400(self, index):
        sharded = ShardedSession(index, num_shards=2)

        async def interact(service):
            return await request(
                service.port, {"terms": TERMS, "mode": "sideways"}
            )

        status, _, body = serve(sharded, ServiceConfig(), interact)
        assert status == 400

    def test_unknown_path_is_404_and_wrong_method_is_405(self, engine):
        async def interact(service):
            missing = await request(service.port, path="/nope", method="GET")
            method = await request(service.port, path="/query", method="GET")
            return missing, method

        missing, method = serve(engine, ServiceConfig(), interact)
        assert missing[0] == 404
        assert method[0] == 405

    def test_oversized_body_is_413(self, engine):
        async def interact(service):
            return await request(
                service.port, {"terms": ["x" * 500] * 10}
            )

        config = ServiceConfig(max_body_bytes=128)
        status, _, body = serve(engine, config, interact)
        assert status == 413
        assert body["error"]["code"] == "bad_request"

    def test_garbage_bytes_are_400(self, engine):
        async def interact(service):
            return await raw_request(service.port, b"NOT HTTP AT ALL\r\n\r\n")

        status, _, body = serve(engine, ServiceConfig(), interact)
        assert status == 400
        assert body["error"]["code"] == "bad_request"


class TestAdmissionAndShedding:
    def test_queue_full_answers_429_with_retry_after(self):
        release = threading.Event()

        class BlockingSession:
            def run(self, terms, k, **kwargs):
                release.wait(timeout=30)
                return TopKResult()

        config = ServiceConfig(
            max_concurrency=1, max_queue=1,
            backlog_budget_ms=60_000.0, shed=NO_SHED,
        )

        async def interact(service):
            payload = {"terms": TERMS, "k": K}
            first = asyncio.ensure_future(request(service.port, payload))
            while service.admission.in_flight < 1:
                await asyncio.sleep(0.005)
            second = asyncio.ensure_future(request(service.port, payload))
            while service.admission.waiting < 1:
                await asyncio.sleep(0.005)
            rejected = await request(service.port, payload)
            release.set()
            return await first, await second, rejected

        first, second, rejected = serve(BlockingSession(), config, interact)
        assert first[0] == 200 and second[0] == 200
        status, headers, body = rejected
        assert status == 429
        assert body["error"]["code"] == "overloaded"
        assert body["error"]["details"]["reason"] == "queue_full"
        assert float(headers["retry-after"]) > 0

    def test_degrade_level_tightens_budgets_and_marks_shed(self):
        stub = StubSession(
            result=TopKResult(
                items=[RankedItem(1, 0.4, 0.9)],
                degraded=True,
                degrade_reason=DEGRADE_DEADLINE,
            )
        )
        config = ServiceConfig(
            default_deadline_ms=1000.0,
            default_cost_budget=1000.0,
            shed=ShedConfig(tighten_factor=0.3),
        )

        async def interact(service):
            service.admission.pressure = lambda: 0.6  # between watermarks
            return await request(service.port, {"terms": TERMS, "k": K})

        status, _, body = serve(stub, config, interact)
        assert status == 206
        assert body["shed"] is True
        # The deadline that fired was the tightened shed budget, so the
        # reason is renamed from "deadline" to "shed" for the client.
        assert body["degrade_reason"] == "shed"
        deadline = stub.calls[0]["deadline"]
        assert deadline.cost_budget == pytest.approx(300.0)
        assert deadline.wall_clock_seconds == pytest.approx(0.3)

    def test_client_budget_is_capped_by_service_default(self):
        stub = StubSession()
        config = ServiceConfig(
            default_deadline_ms=100.0, default_cost_budget=500.0
        )

        async def interact(service):
            return await request(
                service.port,
                {"terms": TERMS, "k": K,
                 "deadline_ms": 10_000, "cost_budget": 10_000},
            )

        status, _, _ = serve(stub, config, interact)
        assert status == 200
        deadline = stub.calls[0]["deadline"]
        assert deadline.cost_budget == pytest.approx(500.0)
        assert deadline.wall_clock_seconds == pytest.approx(0.1)

    def test_reject_level_sheds_with_429(self):
        stub = StubSession()

        async def interact(service):
            service.admission.pressure = lambda: 2.0
            return await request(service.port, {"terms": TERMS, "k": K})

        status, headers, body = serve(stub, ServiceConfig(), interact)
        assert status == 429
        assert body["error"]["details"]["reason"] == "shed_reject"
        assert "retry-after" in headers
        assert stub.calls == []  # rejected before touching the engine


class TestErrorMapping:
    def test_sharded_execution_error_is_503(self):
        failure = ShardFailure(
            shard_id=1, round_no=2, error=RuntimeError("boom")
        )
        stub = StubSession(error=ShardedExecutionError([failure]))

        async def interact(service):
            return await request(service.port, {"terms": TERMS, "k": K})

        status, _, body = serve(stub, ServiceConfig(), interact)
        assert status == 503
        assert body["error"]["code"] == "shards_failed"
        assert "shard 1" in body["error"]["details"]["failures"][0]

    def test_unexpected_exception_is_500_without_traceback(self):
        stub = StubSession(error=RuntimeError("kaput"))

        async def interact(service):
            return await request(service.port, {"terms": TERMS, "k": K})

        status, _, body = serve(stub, ServiceConfig(), interact)
        assert status == 500
        assert body["error"]["code"] == "internal"
        assert "Traceback" not in json.dumps(body)


class TestIntrospection:
    def test_healthz_and_metrics(self, engine):
        async def interact(service):
            await request(service.port, {"terms": TERMS, "k": K})
            health = await request(service.port, path="/healthz",
                                   method="GET")
            metrics = await request(service.port, path="/metrics",
                                    method="GET")
            return health, metrics

        health, metrics = serve(engine, ServiceConfig(), interact)
        assert health[0] == 200
        assert health[2]["status"] == "ok"
        assert health[2]["level"] == "normal"
        assert "pressure" in health[2]
        assert metrics[0] == 200
        snap = metrics[2]
        assert snap["service"]["requests"] >= 2
        # the query plus the /healthz hit before this one
        assert snap["service"]["responses_by_status"].get("200") == 2
        assert snap["service"]["completed_exact"] == 1
        assert snap["admission"]["completed"] == 1
        assert snap["shedding"]["level"] == "normal"
        # single-node QuerySession: no shard backend to report
        assert snap["engine"]["backend"] == "in-process"
