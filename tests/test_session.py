"""Session layer: statistics caching, executor reuse, batch execution."""

import pytest

import repro.core.session as session_module
from repro.core.algorithms import TopKProcessor, run_query
from repro.core.session import (
    QuerySession,
    reset_shared_session,
    shared_session,
)
from repro.stats.catalog import StatsCatalog
from tests.helpers import make_random_index


@pytest.fixture()
def small_index():
    return make_random_index(seed=3)


@pytest.fixture()
def counting_catalog(monkeypatch):
    """Patch the session's StatsCatalog to count real constructions."""
    builds = []

    class CountingCatalog(StatsCatalog):
        def __init__(self, *args, **kwargs):
            builds.append(1)
            super().__init__(*args, **kwargs)

    monkeypatch.setattr(session_module, "StatsCatalog", CountingCatalog)
    return builds


class TestStatsCaching:
    def test_run_many_builds_stats_exactly_once(
        self, small_index, counting_catalog
    ):
        index, terms = small_index
        session = QuerySession(index)
        queries = [
            [terms[i % len(terms)], terms[(i + 1) % len(terms)]]
            for i in range(20)
        ]
        results = session.run_many(queries, k=5)
        assert len(results) == 20
        assert all(r.doc_ids for r in results)
        assert sum(counting_catalog) == 1
        assert session.stats_builds == 1
        assert session.executor_builds == 1
        assert session.queries_run == 20

    def test_individual_runs_share_the_catalog(self, small_index):
        index, terms = small_index
        session = QuerySession(index)
        for _ in range(5):
            session.run(terms, 3, algorithm="NRA")
        assert session.stats_builds == 1
        assert session.stats_for() is session.stats_for(index)

    def test_separate_indexes_get_separate_catalogs(self):
        index_a, terms_a = make_random_index(seed=3)
        index_b, _ = make_random_index(seed=4)
        session = QuerySession()
        session.run(terms_a, 3, index=index_a)
        session.run(terms_a, 3, index=index_b)
        assert session.stats_builds == 2
        assert session.cached_indexes == 2
        assert session.stats_for(index_a) is not session.stats_for(index_b)

    def test_attach_stats_adopts_catalog(self, small_index):
        index, terms = small_index
        session = QuerySession(index)
        executor = session.executor_for()
        catalog = StatsCatalog(index)
        session.attach_stats(catalog)
        assert session.stats_for() is catalog
        assert executor.stats is catalog
        assert session.stats_builds == 1  # built once, then replaced

    def test_executor_reused(self, small_index):
        index, terms = small_index
        session = QuerySession(index)
        assert session.executor_for() is session.executor_for(index)
        assert session.executor_builds == 1


class TestCacheBounds:
    def test_lru_eviction(self):
        session = QuerySession(max_cached_indexes=2)
        indexes = [make_random_index(seed=s)[0] for s in (1, 2, 3)]
        for index in indexes:
            session.stats_for(index)
        assert session.cached_indexes == 2
        assert session.stats_builds == 3
        # The oldest index was evicted: asking again rebuilds.
        session.stats_for(indexes[0])
        assert session.stats_builds == 4
        # The other two were kept... but index 1 evicted index 2.
        session.stats_for(indexes[2])
        assert session.stats_builds == 4

    def test_recent_use_protects_from_eviction(self):
        session = QuerySession(max_cached_indexes=2)
        index_a = make_random_index(seed=1)[0]
        index_b = make_random_index(seed=2)[0]
        session.stats_for(index_a)
        session.stats_for(index_b)
        session.stats_for(index_a)  # refresh a; b is now LRU
        session.stats_for(make_random_index(seed=3)[0])
        session.stats_for(index_a)
        assert session.stats_builds == 3  # a never rebuilt


class TestErrors:
    def test_run_requires_terms_or_plan(self, small_index):
        index, _ = small_index
        session = QuerySession(index)
        with pytest.raises(ValueError, match="terms and k, or a plan"):
            session.run()

    def test_no_index_anywhere(self):
        session = QuerySession()
        with pytest.raises(ValueError, match="no index"):
            session.run(["a"], 1)

    def test_unknown_predictor(self):
        with pytest.raises(ValueError, match="unknown predictor"):
            QuerySession(predictor="gaussian")


class TestSharedSession:
    def test_run_query_reuses_shared_catalog(
        self, small_index, counting_catalog
    ):
        index, terms = small_index
        reset_shared_session()
        try:
            first = run_query(index, terms, 5, algorithm="NRA")
            second = run_query(index, terms, 5, algorithm="TA")
            assert first.doc_ids and second.doc_ids
            assert sum(counting_catalog) == 1
            assert shared_session().stats_builds == 1
        finally:
            reset_shared_session()

    def test_explicit_stats_bypass_the_cache(
        self, small_index, counting_catalog
    ):
        index, terms = small_index
        reset_shared_session()
        try:
            catalog = StatsCatalog(index)
            run_query(index, terms, 5, stats=catalog)
            assert shared_session().cached_indexes == 0
        finally:
            reset_shared_session()

    def test_reset_drops_the_session(self):
        reset_shared_session()
        first = shared_session()
        assert shared_session() is first
        reset_shared_session()
        assert shared_session() is not first


class TestProcessorIntegration:
    def test_processors_can_share_one_session(self, small_index):
        index, terms = small_index
        session = QuerySession()
        fast = TopKProcessor(index, cost_ratio=10.0, session=session)
        slow = TopKProcessor(index, cost_ratio=1000.0, session=session)
        fast.query(terms, 5)
        slow.query(terms, 5)
        assert session.stats_builds == 1
        assert fast.stats is slow.stats

    def test_processor_stats_setter_routes_to_session(self, small_index):
        index, terms = small_index
        processor = TopKProcessor(index)
        catalog = StatsCatalog(index)
        processor.stats = catalog
        assert processor.stats is catalog
        assert processor.session.stats_for(index) is catalog

    def test_warm_precomputes_for_query_log(self, small_index):
        index, terms = small_index
        session = QuerySession(index)
        session.warm([terms])
        assert session.stats_builds == 1
