"""Fork-safety of the session layer (regression, beside thread-safety).

``fork()`` copies the parent's session objects into the child — caches,
the internal ``RLock`` (possibly *held* by a parent thread that does not
exist in the child), the process-wide shared session, and, for the
process backend, worker handles whose processes belong to the parent.
Every one of those must be invalidated by PID on first touch in the
child: fresh lock, empty caches, fresh shared session, no inherited
workers — and the parent's own state must be completely unaffected.
"""

import multiprocessing
import os
import signal
import threading
import time
import traceback

import pytest

from repro.core import session as session_module
from repro.core.session import QuerySession, ShardedSession, shared_session
from tests.helpers import make_random_index

pytestmark = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="fork start method unavailable on this platform",
)

K = 5
_CHILD_TIMEOUT = 60.0


def run_in_fork(child):
    """Fork, run ``child()`` in the child, return its exit code.

    The child leaves via ``os._exit`` so a forked pytest process never
    runs the parent's test harness teardown.  A hung child (the
    deadlock this suite exists to catch) is SIGKILL'd after a timeout
    and reported as a distinct exit status.
    """
    pid = os.fork()
    if pid == 0:  # child
        code = 0
        try:
            child()
        except BaseException:
            traceback.print_exc()
            code = 1
        finally:
            os._exit(code)
    deadline = time.monotonic() + _CHILD_TIMEOUT
    while time.monotonic() < deadline:
        done, status = os.waitpid(pid, os.WNOHANG)
        if done == pid:
            return os.waitstatus_to_exitcode(status)
        time.sleep(0.02)
    os.kill(pid, signal.SIGKILL)
    os.waitpid(pid, 0)
    return "timeout"


def test_forked_child_gets_fresh_caches():
    index, terms = make_random_index(seed=11)
    session = QuerySession(index)
    parent_result = session.run(terms, K)
    assert session.cached_indexes == 1

    def child():
        # PID invalidation: inherited caches are dropped, not reused.
        assert session.cached_indexes == 0
        result = session.run(terms, K)
        assert [i.doc_id for i in result.items] == [
            i.doc_id for i in parent_result.items
        ]
        assert session.cached_indexes == 1

    assert run_in_fork(child) == 0
    # The parent's caches were never touched by the child.
    assert session.cached_indexes == 1
    assert session.run(terms, K).doc_ids == parent_result.doc_ids


def test_fork_while_lock_is_held_does_not_deadlock():
    """The classic fork hazard: another thread holds the session lock
    at fork time, so the child inherits a lock that will never be
    released — unless the child replaces it by PID check."""
    index, terms = make_random_index(seed=12)
    session = QuerySession(index)
    session.stats_for()
    held = threading.Event()
    release = threading.Event()

    def holder():
        with session._lock:
            held.set()
            release.wait(_CHILD_TIMEOUT)

    thread = threading.Thread(target=holder, daemon=True)
    thread.start()
    assert held.wait(5.0)
    try:

        def child():
            # Without the PID check this blocks forever on the
            # inherited (held) RLock.
            session.stats_for()
            assert session.run(terms, K).items

        assert run_in_fork(child) == 0
    finally:
        release.set()
        thread.join(timeout=5.0)


def test_shared_session_is_not_inherited_across_fork():
    index, terms = make_random_index(seed=13)
    shared = shared_session()
    shared.run(terms, K, index=index)
    assert shared.cached_indexes >= 1

    def child():
        fresh = shared_session()
        assert fresh.cached_indexes == 0
        assert session_module._SHARED_SESSION_PID == os.getpid()
        assert fresh.run(terms, K, index=index).items

    assert run_in_fork(child) == 0
    assert shared_session() is shared
    assert shared.cached_indexes >= 1


def test_process_backend_drops_inherited_workers(tmp_path):
    index, terms = make_random_index(seed=14)
    sharded_session = ShardedSession(
        index,
        num_shards=2,
        backend="process",
        start_method="fork",
        spill_dir=str(tmp_path),
    )
    try:
        parent_result = sharded_session.run(terms, K)
        parent_pids = {
            sharded_session.executor._workers[sid].process.pid
            for sid in sharded_session.executor.live_workers()
        }
        assert len(parent_pids) == 2

        def child():
            executor = sharded_session.executor
            # Inherited handles are discarded, not reused or killed.
            assert executor.live_workers() == []
            result = sharded_session.run(terms, K)
            assert result.doc_ids == parent_result.doc_ids
            child_pids = {
                executor._workers[sid].process.pid
                for sid in executor.live_workers()
            }
            assert child_pids and not (child_pids & parent_pids)
            # Child close kills only its own workers and must leave
            # the parent's spill directory in place.
            executor.close()
            assert executor.shard_path(0).exists()

        assert run_in_fork(child) == 0
        # Parent workers survived the child's lifetime and still serve.
        assert len(sharded_session.executor.live_workers()) == 2
        assert sharded_session.run(terms, K).doc_ids == parent_result.doc_ids
    finally:
        sharded_session.close()