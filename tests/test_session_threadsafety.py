"""Thread-safety of the session layer's shared caches.

The sharded execution path hands one :class:`QuerySession` to a pool of
worker threads (one per shard), so the session's id-keyed caches and the
process-wide ``shared_session()`` singleton must tolerate concurrent
first access: exactly one catalog/executor built per index, one global
session object, no lost updates on the lifecycle counters.
"""

import threading
from concurrent.futures import ThreadPoolExecutor

from repro.core.session import (
    QuerySession,
    reset_shared_session,
    shared_session,
)
from tests.helpers import make_random_index

THREADS = 8


def hammer(fn, workers=THREADS, repeats=4):
    """Run ``fn`` concurrently from many threads, a few times each."""
    barrier = threading.Barrier(workers)

    def task():
        barrier.wait()  # maximize the racing window on first access
        return [fn() for _ in range(repeats)]

    with ThreadPoolExecutor(max_workers=workers) as pool:
        futures = [pool.submit(task) for _ in range(workers)]
        return [value for f in futures for value in f.result()]


class TestQuerySessionConcurrency:
    def test_stats_built_once_per_index_under_contention(self):
        indexes = [make_random_index(seed=s)[0] for s in range(4)]
        session = QuerySession()
        counter = {"next": 0}
        lock = threading.Lock()

        def touch():
            with lock:
                index = indexes[counter["next"] % len(indexes)]
                counter["next"] += 1
            return session.stats_for(index)

        catalogs = hammer(touch)
        assert session.stats_builds == len(indexes)
        assert len({id(c) for c in catalogs}) == len(indexes)

    def test_executors_are_cached_not_duplicated(self):
        index, _ = make_random_index(seed=3)
        session = QuerySession(index)
        executors = hammer(session.executor_for)
        assert len({id(e) for e in executors}) == 1
        assert session.executor_builds == 1

    def test_concurrent_queries_share_one_session(self):
        index, terms = make_random_index(seed=5)
        session = QuerySession(index)

        def run():
            return session.run(terms, 5).doc_ids

        results = hammer(run)
        assert len({tuple(r) for r in results}) == 1
        assert session.queries_run == len(results)

    def test_lru_eviction_stays_consistent_under_contention(self):
        indexes = [
            make_random_index(seed=s, list_length=40)[0] for s in range(6)
        ]
        session = QuerySession(max_cached_indexes=2)
        counter = {"next": 0}
        lock = threading.Lock()

        def touch():
            with lock:
                index = indexes[counter["next"] % len(indexes)]
                counter["next"] += 1
            return session.stats_for(index)

        hammer(touch)
        assert session.cached_indexes <= 2


class TestSharedSessionSingleton:
    def test_concurrent_first_calls_get_one_session(self):
        reset_shared_session()
        try:
            sessions = hammer(shared_session)
            assert len({id(s) for s in sessions}) == 1
        finally:
            reset_shared_session()
