"""The shard execution layer and the deadline-splitting arithmetic."""

import math

import pytest

from repro.core.algorithms import plan as plan_query
from repro.core.executor import TERMINATED_DEADLINE, QueryDeadline
from repro.core.session import QuerySession
from repro.distrib import ShardExecutor, partition_index
from repro.storage.faults import FaultInjector, FaultPlan
from repro.distrib.partition import ShardedIndex
from tests.helpers import make_random_index

K = 10


@pytest.fixture(scope="module")
def sharded():
    index, terms = make_random_index(seed=42)
    return partition_index(index, 4, strategy="hash"), terms


class TestDeadlineSplit:
    def test_shares_never_sum_beyond_parent(self):
        # The satellite guarantee: fanning a budget out over shards can
        # never authorize more total COST than the single-node budget.
        for budget in (1.0, 3.0, 10.0, 0.1, 1e9, 7.7, 1234.567):
            for parts in (1, 2, 3, 4, 7, 16, 33):
                shares = QueryDeadline(cost_budget=budget).split(parts)
                assert len(shares) == parts
                total = math.fsum(s.cost_budget for s in shares)
                assert total <= budget
                # and the division stays tight: nothing meaningful lost
                assert total == pytest.approx(budget, rel=1e-12)

    def test_wall_clock_passes_through_undivided(self):
        parent = QueryDeadline(wall_clock_seconds=2.5, cost_budget=100.0)
        for share in parent.split(5):
            assert share.wall_clock_seconds == 2.5

    def test_pure_wall_deadline_is_shared_not_divided(self):
        parent = QueryDeadline(wall_clock_seconds=1.0)
        shares = parent.split(3)
        assert all(s is parent for s in shares)

    def test_rejects_zero_parts(self):
        with pytest.raises(ValueError):
            QueryDeadline(cost_budget=10.0).split(0)


class TestShardExecutor:
    def test_outcomes_ordered_by_shard_id(self, sharded):
        index, terms = sharded
        executor = ShardExecutor(index)
        plan = plan_query(terms, K)
        outcomes = executor.execute_round(plan, [3, 1, 0, 2])
        assert [o.shard_id for o in outcomes] == [0, 1, 2, 3]
        assert all(o.complete for o in outcomes)

    def test_budget_stop_reports_remaining_bound(self, sharded):
        index, terms = sharded
        executor = ShardExecutor(index)
        plan = plan_query(terms, K)
        outcome = executor.execute_one(
            0, plan, QueryDeadline(cost_budget=64.0)
        )
        assert outcome.budget_stopped
        assert outcome.reason == TERMINATED_DEADLINE
        assert not outcome.complete
        # barely scanned: unreported documents may still score high
        assert outcome.remaining_bound > 0.0

    def test_complete_shard_has_dominated_bound(self, sharded):
        index, terms = sharded
        executor = ShardExecutor(index)
        plan = plan_query(terms, K)
        outcome = executor.execute_one(0, plan)
        assert outcome.complete
        assert outcome.result is not None
        # local threshold termination: the remaining bound cannot beat
        # the shard's own min-k (otherwise it would have kept scanning)
        assert outcome.remaining_bound <= outcome.result.min_k + 1e-9

    def test_accounting_accumulates(self, sharded):
        index, terms = sharded
        executor = ShardExecutor(index)
        plan = plan_query(terms, K)
        executor.execute_round(plan, range(index.num_shards))
        executor.execute_round(plan, range(index.num_shards))
        for shard_id in range(index.num_shards):
            account = executor.accounting[shard_id]
            assert account.executions == 2
            assert account.cost > 0
            assert account.failures == 0

    def test_execution_errors_are_captured_not_raised(self, sharded):
        index, terms = sharded
        injector = FaultInjector(FaultPlan(dead_terms=tuple(terms)))
        broken = ShardedIndex(
            shards=(injector.wrap_index(index.shards[0]),)
            + index.shards[1:],
            strategy=index.strategy,
            assignment=index.assignment,
        )
        executor = ShardExecutor(broken)
        plan = plan_query(terms, K)
        outcomes = executor.execute_round(plan, range(broken.num_shards))
        dead = outcomes[0]
        # all lists dead: either the execution raised or it degraded
        # with every query list exhausted — never a silent success
        assert not dead.complete
        if dead.error is None:
            assert set(terms) <= set(dead.result.exhausted_lists)
        assert all(o.complete for o in outcomes[1:])

    def test_shared_session_caches_per_shard_stats(self, sharded):
        index, terms = sharded
        session = QuerySession()
        executor = ShardExecutor(index, session=session)
        plan = plan_query(terms, K)
        executor.execute_round(plan, range(index.num_shards))
        executor.execute_round(plan, range(index.num_shards))
        # one catalog per shard, built once despite two rounds
        assert session.stats_builds == index.num_shards
