"""Chaos under distribution: shard death must degrade, never crash.

The failure-degradation contract (docs/SHARDING.md): when a shard dies
mid-query, the coordinator keeps going with the survivors and returns a
well-formed result with ``degraded=True`` and the dead shard named in
``exhausted_shards`` — the shard-level mirror of the single-node
``exhausted_lists`` report.  The surviving shards' documents are still
ranked correctly, because document partitioning keeps their evidence
complete.

Two kinds of death are pinned to the *same* contract: a shard whose
lists all fail (thread backend, fault-injected) and a shard whose worker
process is SIGKILL'd mid-query (process backend).  The coordinator and
degrade policy cannot tell them apart — both surface as a captured
error on the shard outcome — so neither can the caller.
"""

import collections

import pytest

from repro.core.session import ShardedSession
from repro.distrib import (
    DegradePolicy,
    MergeCoordinator,
    ProcessShardExecutor,
    ShardExecutor,
    ShardWorkerDied,
    ShardedExecutionError,
    partition_index,
)
from repro.distrib.partition import ShardedIndex
from repro.storage.accessors import RetryPolicy
from repro.storage.faults import FaultInjector, FaultPlan
from tests.helpers import make_random_index

K = 10
DEAD_SHARD = 1


def kill_shard(sharded, shard_id, terms):
    """A copy of ``sharded`` whose ``shard_id`` lost every query list."""
    injector = FaultInjector(FaultPlan(dead_terms=tuple(terms)))
    shards = list(sharded.shards)
    shards[shard_id] = injector.wrap_index(shards[shard_id])
    return ShardedIndex(
        shards=tuple(shards),
        strategy=sharded.strategy,
        assignment=sharded.assignment,
    )


@pytest.fixture(scope="module")
def corpus():
    index, terms = make_random_index(seed=42)
    sharded = partition_index(index, 4, strategy="hash")
    totals = collections.defaultdict(float)
    for term in terms:
        lst = index.list_for(term)
        for doc, score in zip(
            lst.doc_ids_by_rank.tolist(), lst.scores_by_rank.tolist()
        ):
            totals[int(doc)] += float(score)
    survivors = {
        doc: score
        for doc, score in totals.items()
        if sharded.shard_of(doc) != DEAD_SHARD
    }
    expected = [
        doc
        for doc, _ in sorted(
            survivors.items(), key=lambda kv: (-kv[1], kv[0])
        )[:K]
    ]
    return sharded, terms, expected


# Never (NRA-style, no random accesses) and a Last-probing RA policy —
# the two RA families the degradation contract must cover.
@pytest.mark.parametrize("algorithm", ["RR-Never", "KSR-Last-Ben"])
@pytest.mark.parametrize("mode", ["bounded", "gather"])
def test_dead_shard_degrades_without_raising(corpus, algorithm, mode):
    sharded, terms, expected = corpus
    broken = kill_shard(sharded, DEAD_SHARD, terms)
    executor = ShardExecutor(
        broken, retry_policy=RetryPolicy(max_attempts=2, query_budget=8)
    )
    coordinator = MergeCoordinator(executor)

    result = coordinator.query(terms, K, algorithm=algorithm, mode=mode)

    assert result.degraded
    assert result.exhausted_shards == [DEAD_SHARD]
    # the surviving shards' evidence is complete, so their ranking is
    # exactly the brute-force top-k over the surviving documents
    assert result.doc_ids == expected


def test_dead_shard_without_retry_policy_still_degrades(corpus):
    sharded, terms, expected = corpus
    broken = kill_shard(sharded, DEAD_SHARD, terms)
    coordinator = MergeCoordinator(ShardExecutor(broken))
    result = coordinator.query(terms, K)
    assert result.degraded
    assert result.exhausted_shards == [DEAD_SHARD]
    assert result.doc_ids == expected


def test_fail_fast_policy_aborts(corpus):
    sharded, terms, _ = corpus
    broken = kill_shard(sharded, DEAD_SHARD, terms)
    coordinator = MergeCoordinator(
        ShardExecutor(broken), degrade=DegradePolicy(fail_fast=True)
    )
    with pytest.raises(ShardedExecutionError) as excinfo:
        coordinator.query(terms, K)
    assert excinfo.value.failures[0].shard_id == DEAD_SHARD


def test_zero_tolerance_policy_aborts(corpus):
    sharded, terms, _ = corpus
    broken = kill_shard(sharded, DEAD_SHARD, terms)
    coordinator = MergeCoordinator(
        ShardExecutor(broken),
        degrade=DegradePolicy(max_failed_shards=0),
    )
    with pytest.raises(ShardedExecutionError):
        coordinator.query(terms, K)


def test_all_shards_dead_aborts_by_default(corpus):
    sharded, terms, _ = corpus
    broken = sharded
    for shard_id in range(sharded.num_shards):
        broken = kill_shard(broken, shard_id, terms)
    coordinator = MergeCoordinator(ShardExecutor(broken))
    with pytest.raises(ShardedExecutionError):
        coordinator.query(terms, K)


def test_sharded_session_surfaces_degradation(corpus):
    sharded, terms, expected = corpus
    broken = kill_shard(sharded, DEAD_SHARD, terms)
    session = ShardedSession(sharded=broken)
    result = session.run(terms, K)
    assert result.degraded
    assert result.exhausted_shards == [DEAD_SHARD]
    assert result.doc_ids == expected


# ----------------------------------------------------------------------
# Process-death chaos: SIGKILL-ing a worker process must follow the
# exact same degradation contract as the thread-backend dead-shard path.
# ----------------------------------------------------------------------


@pytest.fixture(scope="module")
def process_corpus(corpus, tmp_path_factory):
    """The chaos corpus plus its healthy full-corpus golden answer."""
    sharded, terms, expected = corpus
    healthy = MergeCoordinator(ShardExecutor(sharded)).query(terms, K)
    spill = tmp_path_factory.mktemp("chaos-shards")
    return sharded, terms, expected, healthy.doc_ids, spill


def _freshly_killed_executor(process_corpus, **kwargs):
    """A process executor whose DEAD_SHARD worker was SIGKILL'd mid-query.

    ``inject_sleep`` parks the worker inside a request handler (the op
    sends no reply), so the SIGKILL lands while the worker is busy and
    the next execute finds it dead mid-request — the deterministic
    analogue of a crash halfway through a round.  Restarts are disabled
    so the death is observed rather than silently healed by a respawn.
    """
    sharded, terms, _, _, spill = process_corpus
    executor = ProcessShardExecutor(
        sharded,
        start_method="fork",
        spill_dir=str(spill),
        restart_dead_workers=False,
        **kwargs,
    )
    executor.inject_sleep(DEAD_SHARD, 60.0)
    pid = executor.kill_worker(DEAD_SHARD)
    assert pid is not None
    return executor


def test_sigkill_mid_query_degrades_like_thread_death(process_corpus):
    sharded, terms, expected, _, _ = process_corpus
    executor = _freshly_killed_executor(process_corpus)
    try:
        result = MergeCoordinator(executor).query(terms, K)
    finally:
        executor.close()
    # Identical contract to the thread-backend dead-shard path above:
    # well-formed, degraded, dead shard named, survivor ranking exact.
    assert result.degraded
    assert result.degrade_reason == "dead_shard"
    assert result.exhausted_shards == [DEAD_SHARD]
    assert result.doc_ids == expected
    assert executor.accounting[DEAD_SHARD].failures >= 1


def test_sigkill_gather_mode_degrades(process_corpus):
    sharded, terms, expected, _, _ = process_corpus
    executor = _freshly_killed_executor(process_corpus)
    try:
        result = MergeCoordinator(executor).query(terms, K, mode="gather")
    finally:
        executor.close()
    assert result.degraded
    assert result.exhausted_shards == [DEAD_SHARD]
    assert result.doc_ids == expected


def test_sigkill_fail_fast_aborts(process_corpus):
    sharded, terms, _, _, _ = process_corpus
    executor = _freshly_killed_executor(process_corpus)
    coordinator = MergeCoordinator(
        executor, degrade=DegradePolicy(fail_fast=True)
    )
    try:
        with pytest.raises(ShardedExecutionError) as excinfo:
            coordinator.query(terms, K)
    finally:
        executor.close()
    assert excinfo.value.failures[0].shard_id == DEAD_SHARD
    assert isinstance(excinfo.value.failures[0].error, ShardWorkerDied)


def test_respawn_heals_the_next_query(process_corpus):
    """One crash degrades one query — not the executor."""
    sharded, terms, _, healthy_docs, spill = process_corpus
    executor = ProcessShardExecutor(
        sharded, start_method="fork", spill_dir=str(spill)
    )
    try:
        coordinator = MergeCoordinator(executor)
        executor.inject_sleep(DEAD_SHARD, 60.0)
        executor.kill_worker(DEAD_SHARD)
        # SIGKILL delivery is asynchronous: this query observes either
        # the mid-request death (degraded) or an already-respawned
        # worker (healthy) — both are legal; crashing is not.
        coordinator.query(terms, K)
        # By the next query the worker has been respawned: full answer.
        healed = coordinator.query(terms, K)
    finally:
        executor.close()
    assert not healed.degraded
    assert healed.doc_ids == healthy_docs


def test_sharded_session_process_backend_surfaces_death(process_corpus):
    sharded, terms, expected, _, spill = process_corpus
    with ShardedSession(
        sharded=sharded,
        backend="process",
        start_method="fork",
        spill_dir=str(spill),
    ) as session:
        session.executor.restart_dead_workers = False
        session.executor.inject_sleep(DEAD_SHARD, 60.0)
        session.executor.kill_worker(DEAD_SHARD)
        result = session.run(terms, K)
    assert result.degraded
    assert result.degrade_reason == "dead_shard"
    assert result.exhausted_shards == [DEAD_SHARD]
    assert result.doc_ids == expected
