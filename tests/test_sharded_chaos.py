"""Chaos under distribution: shard death must degrade, never crash.

The failure-degradation contract (docs/SHARDING.md): when a shard dies
mid-query, the coordinator keeps going with the survivors and returns a
well-formed result with ``degraded=True`` and the dead shard named in
``exhausted_shards`` — the shard-level mirror of the single-node
``exhausted_lists`` report.  The surviving shards' documents are still
ranked correctly, because document partitioning keeps their evidence
complete.
"""

import collections

import pytest

from repro.core.session import ShardedSession
from repro.distrib import (
    DegradePolicy,
    MergeCoordinator,
    ShardExecutor,
    ShardedExecutionError,
    partition_index,
)
from repro.distrib.partition import ShardedIndex
from repro.storage.accessors import RetryPolicy
from repro.storage.faults import FaultInjector, FaultPlan
from tests.helpers import make_random_index

K = 10
DEAD_SHARD = 1


def kill_shard(sharded, shard_id, terms):
    """A copy of ``sharded`` whose ``shard_id`` lost every query list."""
    injector = FaultInjector(FaultPlan(dead_terms=tuple(terms)))
    shards = list(sharded.shards)
    shards[shard_id] = injector.wrap_index(shards[shard_id])
    return ShardedIndex(
        shards=tuple(shards),
        strategy=sharded.strategy,
        assignment=sharded.assignment,
    )


@pytest.fixture(scope="module")
def corpus():
    index, terms = make_random_index(seed=42)
    sharded = partition_index(index, 4, strategy="hash")
    totals = collections.defaultdict(float)
    for term in terms:
        lst = index.list_for(term)
        for doc, score in zip(
            lst.doc_ids_by_rank.tolist(), lst.scores_by_rank.tolist()
        ):
            totals[int(doc)] += float(score)
    survivors = {
        doc: score
        for doc, score in totals.items()
        if sharded.shard_of(doc) != DEAD_SHARD
    }
    expected = [
        doc
        for doc, _ in sorted(
            survivors.items(), key=lambda kv: (-kv[1], kv[0])
        )[:K]
    ]
    return sharded, terms, expected


# Never (NRA-style, no random accesses) and a Last-probing RA policy —
# the two RA families the degradation contract must cover.
@pytest.mark.parametrize("algorithm", ["RR-Never", "KSR-Last-Ben"])
@pytest.mark.parametrize("mode", ["bounded", "gather"])
def test_dead_shard_degrades_without_raising(corpus, algorithm, mode):
    sharded, terms, expected = corpus
    broken = kill_shard(sharded, DEAD_SHARD, terms)
    executor = ShardExecutor(
        broken, retry_policy=RetryPolicy(max_attempts=2, query_budget=8)
    )
    coordinator = MergeCoordinator(executor)

    result = coordinator.query(terms, K, algorithm=algorithm, mode=mode)

    assert result.degraded
    assert result.exhausted_shards == [DEAD_SHARD]
    # the surviving shards' evidence is complete, so their ranking is
    # exactly the brute-force top-k over the surviving documents
    assert result.doc_ids == expected


def test_dead_shard_without_retry_policy_still_degrades(corpus):
    sharded, terms, expected = corpus
    broken = kill_shard(sharded, DEAD_SHARD, terms)
    coordinator = MergeCoordinator(ShardExecutor(broken))
    result = coordinator.query(terms, K)
    assert result.degraded
    assert result.exhausted_shards == [DEAD_SHARD]
    assert result.doc_ids == expected


def test_fail_fast_policy_aborts(corpus):
    sharded, terms, _ = corpus
    broken = kill_shard(sharded, DEAD_SHARD, terms)
    coordinator = MergeCoordinator(
        ShardExecutor(broken), degrade=DegradePolicy(fail_fast=True)
    )
    with pytest.raises(ShardedExecutionError) as excinfo:
        coordinator.query(terms, K)
    assert excinfo.value.failures[0].shard_id == DEAD_SHARD


def test_zero_tolerance_policy_aborts(corpus):
    sharded, terms, _ = corpus
    broken = kill_shard(sharded, DEAD_SHARD, terms)
    coordinator = MergeCoordinator(
        ShardExecutor(broken),
        degrade=DegradePolicy(max_failed_shards=0),
    )
    with pytest.raises(ShardedExecutionError):
        coordinator.query(terms, K)


def test_all_shards_dead_aborts_by_default(corpus):
    sharded, terms, _ = corpus
    broken = sharded
    for shard_id in range(sharded.num_shards):
        broken = kill_shard(broken, shard_id, terms)
    coordinator = MergeCoordinator(ShardExecutor(broken))
    with pytest.raises(ShardedExecutionError):
        coordinator.query(terms, K)


def test_sharded_session_surfaces_degradation(corpus):
    sharded, terms, expected = corpus
    broken = kill_shard(sharded, DEAD_SHARD, terms)
    session = ShardedSession(sharded=broken)
    result = session.run(terms, K)
    assert result.degraded
    assert result.exhausted_shards == [DEAD_SHARD]
    assert result.doc_ids == expected
