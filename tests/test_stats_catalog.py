"""Unit tests for the precomputed statistics catalog."""

import pytest

from repro.stats.catalog import StatsCatalog
from repro.stats.correlation import CovarianceTable
from repro.stats.histogram import ScoreHistogram
from repro.stats.score_predictor import ScorePredictor



class TestStatsCatalog:
    def test_histograms_cached(self, small_index):
        index, terms = small_index
        catalog = StatsCatalog(index)
        first = catalog.histogram(terms[0])
        assert isinstance(first, ScoreHistogram)
        assert catalog.histogram(terms[0]) is first

    def test_histogram_matches_list(self, small_index):
        index, terms = small_index
        catalog = StatsCatalog(index)
        hist = catalog.histogram(terms[0])
        assert hist.total == len(index.list_for(terms[0]))

    def test_num_buckets_propagates(self, small_index):
        index, terms = small_index
        catalog = StatsCatalog(index, num_buckets=17)
        assert catalog.histogram(terms[0]).num_buckets == 17

    def test_covariance_cached_per_order(self, small_index):
        index, terms = small_index
        catalog = StatsCatalog(index)
        table = catalog.covariance(terms)
        assert isinstance(table, CovarianceTable)
        assert catalog.covariance(terms) is table
        reordered = catalog.covariance(list(reversed(terms)))
        assert reordered is not table

    def test_correlations_disabled(self, small_index):
        index, terms = small_index
        catalog = StatsCatalog(index, use_correlations=False)
        assert catalog.covariance(terms) is None

    def test_predictor_construction(self, small_index):
        index, terms = small_index
        catalog = StatsCatalog(index)
        predictor = catalog.predictor(terms)
        assert isinstance(predictor, ScorePredictor)
        assert predictor.num_lists == len(terms)
        assert predictor.covariance is catalog.covariance(terms)

    def test_unknown_term_raises(self, small_index):
        index, _ = small_index
        catalog = StatsCatalog(index)
        with pytest.raises(KeyError):
            catalog.histogram("no-such-term")


class TestQueryLogPrecompute:
    def test_precompute_warms_caches(self, small_index):
        index, terms = small_index
        catalog = StatsCatalog(index)
        count = catalog.precompute_from_query_log([terms, terms[:2]])
        assert count == 2
        assert catalog.covariance(terms) is catalog.covariance(terms)
        # All histograms built.
        for term in terms:
            assert term in catalog._histograms

    def test_precompute_skips_unknown_terms(self, small_index):
        index, terms = small_index
        catalog = StatsCatalog(index)
        count = catalog.precompute_from_query_log(
            [[terms[0], "unknown-term"]]
        )
        assert count == 0
        assert terms[0] in catalog._histograms

    def test_precompute_respects_disabled_correlations(self, small_index):
        index, terms = small_index
        catalog = StatsCatalog(index, use_correlations=False)
        assert catalog.precompute_from_query_log([terms]) == 0
