"""The never-wrong harness for plan-time threshold prediction (PR 8).

Threshold prediction is an *accelerator*: it may drop candidates and
skip shards early, but the engine certifies every shortcut against the
exact final threshold and re-executes prediction-free whenever a
certificate fails.  This suite pins the resulting guarantee from every
angle:

* golden parity — all 24 algorithm triples on the randomized stress
  corpora return byte-identical answers (doc ids *and* score intervals)
  with prediction on vs off,
* adversarial predictors — an estimator that is wildly wrong must
  trigger the fallback (observable in ``prediction_fallback``) and still
  return exact results, single-node and sharded,
* certified drops — a crafted corpus where a correct prediction really
  does drop candidates mid-flight (``prediction_drops > 0``) without
  fallback and without changing the answer,
* bookkeeping-mode identity — the vectorized columnar prune path is
  access-identical to the scalar reference,
* estimator properties — the single-list quantile is a true lower bound
  on the exact threshold; the model-based estimators are bounded and
  deterministic,
* coordinator integration — histogram-certified shard skips cut cost
  and coordinator rounds on a skewed corpus while preserving parity.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.algorithms import available_algorithms
from repro.core.bookkeeping import bookkeeping_mode, reference_pools
from repro.core.session import QuerySession, ShardedSession
from repro.distrib.partition import hash_shard
from repro.stats import ScoreHistogram
from repro.stats.threshold import (
    PredictedThreshold,
    convolved_quantile,
    predict_threshold,
    sampled_quantile,
    single_list_quantile,
)
from repro.storage.index_builder import build_index
from tests.helpers import CORPORA, make_random_index, oracle_scores

K = 5

ALGORITHMS = sorted(available_algorithms())


def result_key(result):
    """Everything an answer is: ids in order plus exact score intervals."""
    return [(i.doc_id, i.worstscore, i.bestscore) for i in result.items]


def adversarial_predictor(catalog, terms, k, weights=None):
    """A predictor that is catastrophically too high: every candidate and
    every shard looks hopeless.  The safety harness must absorb it."""
    return PredictedThreshold(value=1e9, method="adversarial", raw=1e9)


def fixed_predictor(value):
    def predictor(catalog, terms, k, weights=None):
        return PredictedThreshold(value=value, method="fixed", raw=value)

    return predictor


@pytest.fixture(scope="module")
def prediction_sessions(corpus_sessions):
    """Prediction-enabled twins of the shared stress-corpus sessions."""
    twins = {}
    for key in CORPORA:
        session, terms = corpus_sessions[key]
        twins[key] = (
            QuerySession(
                session.default_index,
                cost_ratio=100.0,
                predict_threshold=True,
            ),
            terms,
        )
    return twins


# ---------------------------------------------------------------------------
# Golden parity: prediction on == prediction off, everywhere.
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("corpus", CORPORA, ids=lambda c: "%s-%s" % c)
@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_prediction_parity_all_algorithms(
    corpus_sessions, prediction_sessions, corpus, algorithm
):
    """Byte-identical answers with the honest estimator switched on."""
    off_session, terms = corpus_sessions[corpus]
    on_session, _ = prediction_sessions[corpus]
    off = off_session.run(terms, K, algorithm=algorithm)
    on = on_session.run(terms, K, algorithm=algorithm)
    assert result_key(on) == result_key(off)
    assert not on.degraded


@pytest.mark.parametrize("corpus", CORPORA, ids=lambda c: "%s-%s" % c)
def test_honest_estimator_produces_a_prediction(corpus_sessions, corpus):
    """The parity sweep is not vacuous: the estimator attaches a positive
    threshold on every stress corpus."""
    session, terms = corpus_sessions[corpus]
    prediction = predict_threshold(
        session.stats_for(session.default_index), terms, K
    )
    assert prediction is not None
    assert prediction.value > 0.0


# ---------------------------------------------------------------------------
# Adversarial predictors: the fallback fires and restores exactness.
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_adversarial_predictor_falls_back_exactly(
    corpus_sessions, algorithm
):
    """A hopeless over-prediction drops everything; the harness detects
    the uncertifiable drops, re-executes prediction-free, and reports the
    fallback — the answer never changes."""
    session, terms = corpus_sessions[(1, "uniform")]
    off = session.run(terms, K, algorithm=algorithm)
    on = QuerySession(
        session.default_index,
        cost_ratio=100.0,
        predict_threshold=True,
        threshold_predictor=adversarial_predictor,
    ).run(terms, K, algorithm=algorithm)
    assert result_key(on) == result_key(off)
    assert on.stats.prediction_fallback == 1
    assert on.stats.prediction_drops > 0
    # Honesty in accounting: the abandoned run's work is charged.
    assert on.stats.cost >= off.stats.cost


def test_fallback_cost_includes_abandoned_run(corpus_sessions):
    """The fallback's meter merges the abandoned attempt: strictly more
    rounds and cost than the straight prediction-off execution."""
    session, terms = corpus_sessions[(2, "zipf")]
    off = session.run(terms, K, algorithm="RR-Never")
    on = QuerySession(
        session.default_index,
        cost_ratio=100.0,
        predict_threshold=True,
        threshold_predictor=adversarial_predictor,
    ).run(terms, K, algorithm="RR-Never")
    assert result_key(on) == result_key(off)
    assert on.stats.rounds > off.stats.rounds
    assert on.stats.cost > off.stats.cost


# ---------------------------------------------------------------------------
# Certified drops: prediction prunes without fallback on a crafted corpus.
# ---------------------------------------------------------------------------


def drops_corpus():
    """Two lists engineered so a correct prediction (0.9, below the true
    threshold 1.16) catches mid-flight candidates whose best score can no
    longer reach it, while ``min-k`` is still too low to prune them."""
    a = [(0, 0.6), (1, 0.58)] + [
        (100 + j, 0.2 - 0.01 * j) for j in range(8)
    ]
    b = [(0, 0.6), (50, 0.59), (51, 0.585), (1, 0.58)] + [
        (200 + j, 0.2 - 0.01 * j) for j in range(8)
    ]
    return build_index({"A": a, "B": b}, block_size=1)


def test_certified_drops_fire_without_fallback():
    index = drops_corpus()
    off = QuerySession(index, cost_ratio=100.0).run(
        ["A", "B"], 2, algorithm="RR-Never"
    )
    on = QuerySession(
        index,
        cost_ratio=100.0,
        predict_threshold=True,
        threshold_predictor=fixed_predictor(0.9),
    ).run(["A", "B"], 2, algorithm="RR-Never")
    assert result_key(on) == result_key(off)
    assert on.stats.prediction_drops > 0
    assert on.stats.prediction_fallback == 0


@pytest.mark.parametrize("mode", ["columnar", "incremental"])
def test_prune_path_is_mode_identical(mode):
    """The vectorized columnar ``prune_below`` and the incremental pool
    reproduce the reference engine access-for-access on the corpus where
    prediction drops actually fire."""
    index = drops_corpus()

    def run():
        return QuerySession(
            index,
            cost_ratio=100.0,
            predict_threshold=True,
            threshold_predictor=fixed_predictor(0.9),
        ).run(["A", "B"], 2, algorithm="RR-Never", trace=True)

    with bookkeeping_mode(mode):
        result = run()
    with reference_pools():
        reference = run()
    assert result.stats.prediction_drops == reference.stats.prediction_drops
    assert result.stats.prediction_drops > 0
    assert (
        result.stats.sorted_accesses,
        result.stats.random_accesses,
        result.stats.cost,
        result.doc_ids,
    ) == (
        reference.stats.sorted_accesses,
        reference.stats.random_accesses,
        reference.stats.cost,
        reference.doc_ids,
    )
    assert [str(r) for r in result.trace] == [
        str(r) for r in reference.trace
    ]


@pytest.mark.parametrize("mode", ["columnar", "incremental"])
@pytest.mark.parametrize("algorithm", ["RR-Never", "KSR-Last-Ben"])
def test_honest_prediction_is_mode_identical(
    corpus_sessions, mode, algorithm
):
    session, terms = corpus_sessions[(3, "ties")]

    def run():
        return QuerySession(
            session.default_index,
            cost_ratio=100.0,
            predict_threshold=True,
        ).run(terms, K, algorithm=algorithm, trace=True)

    with bookkeeping_mode(mode):
        result = run()
    with reference_pools():
        reference = run()
    assert result.doc_ids == reference.doc_ids
    assert result.stats.cost == reference.stats.cost
    assert [str(r) for r in result.trace] == [
        str(r) for r in reference.trace
    ]


# ---------------------------------------------------------------------------
# Estimator properties.
# ---------------------------------------------------------------------------


@pytest.mark.parametrize(
    "seed,distribution", CORPORA, ids=lambda c: str(c)
)
def test_quantile_estimate_is_a_true_lower_bound(seed, distribution):
    """The unshrunk single-list quantile never exceeds the exact top-k
    threshold: at least k documents score at least the k-th best entry
    of any one list."""
    index, terms = make_random_index(
        num_lists=3,
        list_length=300,
        num_docs=1000,
        block_size=32,
        distribution=distribution,
        seed=seed,
    )
    from repro.stats import StatsCatalog

    catalog = StatsCatalog(index)
    truth = oracle_scores(index, terms, K)[K - 1]
    prediction = predict_threshold(catalog, terms, K, method="quantile")
    assert prediction is not None
    assert prediction.value <= truth + 1e-9


@settings(max_examples=30, deadline=None)
@given(
    st.lists(
        st.floats(min_value=0.001, max_value=1.0, allow_nan=False),
        min_size=5, max_size=120,
    ),
    st.integers(min_value=1, max_value=5),
)
def test_single_list_quantile_property(scores, k):
    """Against a single list the aggregated threshold *is* the k-th best
    score; the estimator must lower-bound it within histogram error (the
    subtracted bucket width makes the bound exact)."""
    hist = ScoreHistogram(np.array(scores), num_buckets=16)
    estimate = single_list_quantile([hist], k)
    if k <= len(scores):
        truth = sorted(scores, reverse=True)[k - 1]
        assert estimate <= truth + 1e-9
    assert estimate >= 0.0


def test_convolved_quantile_bounded_and_monotone_in_k():
    rng = np.random.default_rng(5)
    hists = [ScoreHistogram(rng.random(400)) for _ in range(3)]
    lengths = [400, 400, 400]
    values = [
        convolved_quantile(hists, lengths, 1000, k)
        for k in (1, 5, 20, 100, 400)
    ]
    upper = sum(h.upper for h in hists)
    for value in values:
        assert 0.0 <= value <= upper + 1e-9
    assert all(a >= b - 1e-9 for a, b in zip(values, values[1:]))


def test_sampled_quantile_deterministic_and_sparse_guard():
    index, terms = make_random_index(seed=9)
    first = sampled_quantile(index, terms, 10, sample_size=128, seed=3)
    second = sampled_quantile(index, terms, 10, sample_size=128, seed=3)
    assert first == second
    assert first is not None and first >= 0.0
    # Degenerate sampling budgets refuse rather than guess.
    assert sampled_quantile(index, terms, 1, sample_size=0) is None
    assert sampled_quantile(index, terms, 0, sample_size=64) is None


def test_predict_threshold_validates_inputs():
    index, terms = make_random_index(seed=9)
    from repro.stats import StatsCatalog

    catalog = StatsCatalog(index)
    with pytest.raises(ValueError):
        predict_threshold(catalog, terms, K, method="oracle")
    with pytest.raises(ValueError):
        PredictedThreshold(value=-0.5)
    with pytest.raises(ValueError):
        PredictedThreshold(value=1.0, safety=0.0)
    auto = predict_threshold(catalog, terms, K)
    quantile = predict_threshold(catalog, terms, K, method="quantile")
    assert auto is not None and quantile is not None
    # auto takes the max over estimators, so it dominates each one.
    assert auto.value >= quantile.value - 1e-12


# ---------------------------------------------------------------------------
# Coordinator integration: shard skips, certified or re-admitted.
# ---------------------------------------------------------------------------


def skewed_sharded_index(
    seed=23, num_lists=3, length=2000, num_docs=6000, shards=4
):
    """Scores keyed to the hash-shard of the document: shard 0 holds the
    strong half of the score range, so its histogram upper bounds clear
    the predicted threshold while shards 1-3 provably cannot."""
    import random

    rng = random.Random(seed)
    postings = {}
    for i in range(num_lists):
        docs = rng.sample(range(num_docs), length)
        postings["t%d" % i] = [
            (
                d,
                rng.uniform(0.5, 1.0)
                if hash_shard(d, shards) == 0
                else rng.uniform(0.0, 0.5),
            )
            for d in docs
        ]
    terms = ["t%d" % i for i in range(num_lists)]
    return build_index(postings, block_size=64), terms


@pytest.fixture(scope="module")
def skewed_corpus():
    return skewed_sharded_index()


def _sharded(index, predict, predictor=None, budget=200):
    return ShardedSession(
        index=index,
        num_shards=4,
        strategy="hash",
        round_budget=budget,
        cost_ratio=100.0,
        predict_threshold=predict,
        threshold_predictor=predictor,
    )


def test_coordinator_skips_weak_shards_with_parity(skewed_corpus):
    index, terms = skewed_corpus
    off = _sharded(index, False).run(terms, 20, mode="bounded")
    on = _sharded(index, True).run(terms, 20, mode="bounded")
    assert result_key(on) == result_key(off)
    assert on.skipped_shards == [1, 2, 3]
    assert on.readmitted_shards == []
    assert on.predicted_threshold is not None
    # The accelerator must actually accelerate here: fewer coordinator
    # rounds (prediction-sized first budgets skip the escalation ladder)
    # and less total cost (weak shards never execute).
    assert on.stats.cost < off.stats.cost
    assert on.coordinator_rounds < off.coordinator_rounds
    assert on.shard_rounds < off.shard_rounds


def test_coordinator_adversarial_readmits_all_shards(coordinator_setup):
    """Predicting 1e9 skips every shard; the certification loop finds
    the skips unjustified against the final min-k, re-admits all of
    them unbounded, and the merged answer is exact."""
    index = coordinator_setup["index"]
    terms = coordinator_setup["terms"]
    off = _sharded(index, False, budget=None).run(terms, 10, mode="bounded")
    on = _sharded(
        index, True, predictor=adversarial_predictor, budget=None
    ).run(terms, 10, mode="bounded")
    assert result_key(on) == result_key(off)
    assert on.doc_ids == coordinator_setup["golden"]
    assert on.readmitted_shards == [0, 1, 2, 3]
    assert on.stats.prediction_fallback >= 1
    assert not on.degraded


def test_coordinator_gather_mode_ignores_prediction(skewed_corpus):
    """Prediction is a bounded-mode accelerator; gather mode must run
    every shard regardless."""
    index, terms = skewed_corpus
    on = _sharded(index, True).run(terms, 20, mode="gather")
    off = _sharded(index, False).run(terms, 20, mode="gather")
    assert result_key(on) == result_key(off)
    assert on.skipped_shards == []
    assert on.predicted_threshold is None
