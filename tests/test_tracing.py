"""Tests for per-round execution tracing."""

import pytest

from repro.core.algorithms import TopKProcessor



@pytest.fixture
def traced(small_index):
    index, terms = small_index
    processor = TopKProcessor(index, cost_ratio=100)
    result = processor.query(terms, 10, algorithm="NRA", trace=True)
    return index, terms, result


class TestTracing:
    def test_disabled_by_default(self, small_index):
        index, terms = small_index
        processor = TopKProcessor(index, cost_ratio=100)
        result = processor.query(terms, 10, algorithm="NRA")
        assert result.trace == []

    def test_one_record_per_round(self, traced):
        _, _, result = traced
        assert len(result.trace) == result.stats.rounds
        assert [t.round_no for t in result.trace] == list(
            range(1, result.stats.rounds + 1)
        )

    def test_positions_monotone(self, traced):
        _, _, result = traced
        for before, after in zip(result.trace, result.trace[1:]):
            assert all(
                b <= a for b, a in zip(before.positions, after.positions)
            )

    def test_bounds_monotone(self, traced):
        _, _, result = traced
        for before, after in zip(result.trace, result.trace[1:]):
            assert after.unseen_bestscore <= before.unseen_bestscore + 1e-9
            assert after.min_k >= before.min_k - 1e-9

    def test_accesses_cumulative(self, traced):
        _, _, result = traced
        last = result.trace[-1]
        assert last.sorted_accesses == result.stats.sorted_accesses
        assert last.random_accesses == result.stats.random_accesses

    def test_allocation_sums_to_position_delta(self, traced):
        _, _, result = traced
        previous = (0,) * len(result.trace[0].positions)
        for record in result.trace:
            delta = sum(
                after - before
                for before, after in zip(previous, record.positions)
            )
            assert delta == sum(record.allocation)
            previous = record.positions

    def test_final_round_satisfies_termination(self, traced):
        _, _, result = traced
        last = result.trace[-1]
        assert last.queue_size == 0
        assert last.unseen_bestscore <= last.min_k + 1e-9

    def test_str_rendering(self, traced):
        _, _, result = traced
        text = str(result.trace[0])
        assert "round 1" in text
        assert "min-k" in text

    def test_trace_records_probes(self, small_index):
        index, terms = small_index
        processor = TopKProcessor(index, cost_ratio=10)
        result = processor.query(terms, 10, algorithm="CA", trace=True)
        assert result.stats.random_accesses > 0
        assert result.trace[-1].random_accesses == (
            result.stats.random_accesses
        )
