"""Integration tests for weighted aggregation (monotone weighted sum)."""

import collections

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.algorithms import TopKProcessor, available_algorithms
from repro.core.lower_bound import LowerBoundComputer

from tests.helpers import make_random_index

WEIGHTS = [2.0, 0.5, 1.0]


def weighted_oracle(index, terms, weights, k):
    totals = collections.defaultdict(float)
    for term, weight in zip(terms, weights):
        index_list = index.list_for(term)
        for doc, score in zip(
            index_list.doc_ids_by_rank, index_list.scores_by_rank
        ):
            totals[int(doc)] += float(score) * weight
    ranked = sorted((t for t in totals.values() if t > 0.0), reverse=True)
    return ranked[:k]


def weighted_score(index, terms, weights, doc):
    total = 0.0
    for term, weight in zip(terms, weights):
        score = index.list_for(term).lookup(doc)
        total += (score or 0.0) * weight
    return total


@pytest.mark.parametrize("algorithm", available_algorithms())
def test_weighted_queries_match_oracle(algorithm):
    index, terms = make_random_index(seed=29)
    processor = TopKProcessor(index, cost_ratio=100)
    result = processor.query(terms, 10, algorithm=algorithm,
                             weights=WEIGHTS)
    expected = weighted_oracle(index, terms, WEIGHTS, 10)
    got = sorted(
        (weighted_score(index, terms, WEIGHTS, d) for d in result.doc_ids),
        reverse=True,
    )
    assert np.allclose(got, expected, atol=1e-6)


def test_full_merge_supports_weights():
    index, terms = make_random_index(seed=29)
    processor = TopKProcessor(index, cost_ratio=100)
    merged = processor.full_merge(terms, 10, weights=WEIGHTS)
    expected = weighted_oracle(index, terms, WEIGHTS, 10)
    got = [item.worstscore for item in merged.items]
    assert np.allclose(got, expected, atol=1e-9)


def test_weights_change_the_ranking():
    index, terms = make_random_index(seed=29)
    processor = TopKProcessor(index, cost_ratio=100)
    plain = processor.query(terms, 10).doc_ids
    boosted = processor.query(terms, 10, weights=[10.0, 1.0, 1.0]).doc_ids
    assert plain != boosted


def test_weighted_lower_bound_validity():
    index, terms = make_random_index(
        num_lists=3, list_length=300, num_docs=900, seed=37
    )
    computer = LowerBoundComputer(index, terms, weights=WEIGHTS)
    bound = computer.cost_for_k(5, 100.0)
    processor = TopKProcessor(index, cost_ratio=100)
    for algorithm in ("NRA", "CA", "KSR-Last-Ben"):
        cost = processor.query(
            terms, 5, algorithm=algorithm, weights=WEIGHTS
        ).stats.cost
        assert bound <= cost + 1e-6


def test_uniform_weights_are_identity():
    index, terms = make_random_index(seed=29)
    processor = TopKProcessor(index, cost_ratio=100)
    plain = processor.query(terms, 10, algorithm="NRA")
    weighted = processor.query(
        terms, 10, algorithm="NRA", weights=[1.0, 1.0, 1.0]
    )
    assert plain.doc_ids == weighted.doc_ids
    assert plain.stats.cost == weighted.stats.cost


@pytest.mark.parametrize("weights", [[1.0], [1.0, 2.0, 3.0, 4.0],
                                     [1.0, -1.0, 1.0], [0.0, 1.0, 1.0]])
def test_invalid_weights_rejected(weights):
    index, terms = make_random_index(seed=29)
    processor = TopKProcessor(index, cost_ratio=100)
    with pytest.raises(ValueError):
        processor.query(terms, 5, weights=weights)


@settings(max_examples=15, deadline=None)
@given(
    weights=st.lists(
        st.floats(min_value=0.1, max_value=10.0, allow_nan=False),
        min_size=3, max_size=3,
    ),
    algorithm=st.sampled_from(["NRA", "CA", "RR-Last-Best", "KSR-Last-Ben"]),
)
def test_weighted_correctness_property(weights, algorithm):
    index, terms = make_random_index(
        num_lists=3, list_length=200, num_docs=600, seed=41
    )
    processor = TopKProcessor(index, cost_ratio=50)
    result = processor.query(terms, 5, algorithm=algorithm, weights=weights)
    expected = weighted_oracle(index, terms, weights, 5)
    got = sorted(
        (weighted_score(index, terms, weights, d) for d in result.doc_ids),
        reverse=True,
    )
    assert np.allclose(got, expected, atol=1e-6)
