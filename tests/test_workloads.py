"""Unit tests for the named dataset registry (small scales only)."""

import pytest

from repro.data.workloads import Dataset, available_datasets, load_dataset

SCALE = 0.05


class TestLoadDataset:
    def test_unknown_name(self):
        with pytest.raises(ValueError):
            load_dataset("no-such-dataset")

    def test_available_names(self):
        names = available_datasets()
        for required in [
            "terabyte-bm25", "terabyte-tfidf", "terabyte-expanded",
            "imdb", "httplog", "uniform", "zipf",
        ]:
            assert required in names

    def test_caching_returns_same_object(self):
        a = load_dataset("uniform", scale=SCALE)
        b = load_dataset("uniform", scale=SCALE)
        assert a is b

    def test_different_scale_rebuilds(self):
        a = load_dataset("uniform", scale=SCALE)
        b = load_dataset("uniform", scale=SCALE * 2)
        assert a is not b

    @pytest.mark.parametrize("name", [
        "terabyte-bm25", "terabyte-tfidf", "imdb", "httplog", "uniform",
        "zipf",
    ])
    def test_every_dataset_is_runnable(self, name):
        dataset = load_dataset(name, scale=SCALE)
        assert isinstance(dataset, Dataset)
        assert dataset.queries
        for query in dataset.queries:
            assert query, "empty query in %s" % name
            for term in query:
                assert term in dataset.index

    def test_expanded_shares_index_with_bm25(self):
        bm25 = load_dataset("terabyte-bm25", scale=SCALE)
        expanded = load_dataset("terabyte-expanded", scale=SCALE)
        assert expanded.index is bm25.index
        mean_short = sum(len(q) for q in bm25.queries) / len(bm25.queries)
        mean_long = sum(len(q) for q in expanded.queries) / len(
            expanded.queries
        )
        assert mean_long > mean_short

    def test_terabyte_lists_are_padded(self):
        dataset = load_dataset("terabyte-bm25", scale=SCALE)
        # Background padding must extend the universe beyond the corpus.
        assert dataset.num_docs > 2_000

    def test_queries_execute_end_to_end(self):
        from repro.core.algorithms import TopKProcessor

        dataset = load_dataset("terabyte-bm25", scale=SCALE)
        processor = TopKProcessor(dataset.index, cost_ratio=100)
        result = processor.query(dataset.queries[0], 5)
        assert 0 < len(result.items) <= 5


class TestDatasetBehaviorPins:
    """Behavior pins: properties downstream layers rely on."""

    def test_seed_changes_the_draw(self):
        a = load_dataset("uniform", scale=SCALE, seed=1)
        b = load_dataset("uniform", scale=SCALE, seed=2)
        assert a is not b
        term = a.queries[0][0]
        assert term in b.index  # same vocabulary layout...
        assert not (
            a.index.list_for(term).scores_by_rank[:10].tolist()
            == b.index.list_for(term).scores_by_rank[:10].tolist()
        )  # ...different scores

    def test_same_key_is_cached_not_rebuilt(self):
        a = load_dataset("zipf", scale=SCALE, seed=9)
        b = load_dataset("zipf", scale=SCALE, seed=9)
        assert a is b

    def test_synthetic_queries_partition_the_lists(self):
        dataset = load_dataset("uniform", scale=SCALE)
        seen = [t for q in dataset.queries for t in q]
        assert len(seen) == len(set(seen))  # disjoint triples
        assert len(dataset.queries) == 5
        assert all(len(q) == 3 for q in dataset.queries)

    def test_zipf_scores_are_more_skewed_than_uniform(self):
        zipf = load_dataset("zipf", scale=SCALE)
        uniform = load_dataset("uniform", scale=SCALE)

        def drop(dataset):
            lst = dataset.index.list_for(dataset.queries[0][0])
            scores = lst.scores_by_rank
            mid = scores[len(scores) // 2]
            return float(scores[0]) / max(float(mid), 1e-12)

        assert drop(zipf) > drop(uniform)

    def test_num_docs_property_mirrors_index(self):
        dataset = load_dataset("httplog", scale=SCALE)
        assert dataset.num_docs == dataset.index.num_docs

    def test_dataset_index_works_as_live_base(self):
        """A dataset drops straight into the live subsystem."""
        from repro.core.session import QuerySession
        from repro.live import LiveIndex

        dataset = load_dataset("uniform", scale=SCALE)
        session = QuerySession(cost_ratio=100.0)
        terms = dataset.queries[0]
        with LiveIndex(dataset.index) as live:
            with live.snapshot() as snap:
                before = session.run(terms, 5, index=snap.index)
                baseline = session.run(terms, 5, index=dataset.index)
                assert [i.doc_id for i in before.items] == [
                    i.doc_id for i in baseline.items
                ]
                assert before.stats.cost == baseline.stats.cost
            live.upsert(dataset.num_docs + 7, {t: 1e9 for t in terms})
            with live.snapshot() as snap:
                after = session.run(terms, 1, index=snap.index)
                assert after.items[0].doc_id == dataset.num_docs + 7
