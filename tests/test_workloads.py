"""Unit tests for the named dataset registry (small scales only)."""

import pytest

from repro.data.workloads import Dataset, available_datasets, load_dataset

SCALE = 0.05


class TestLoadDataset:
    def test_unknown_name(self):
        with pytest.raises(ValueError):
            load_dataset("no-such-dataset")

    def test_available_names(self):
        names = available_datasets()
        for required in [
            "terabyte-bm25", "terabyte-tfidf", "terabyte-expanded",
            "imdb", "httplog", "uniform", "zipf",
        ]:
            assert required in names

    def test_caching_returns_same_object(self):
        a = load_dataset("uniform", scale=SCALE)
        b = load_dataset("uniform", scale=SCALE)
        assert a is b

    def test_different_scale_rebuilds(self):
        a = load_dataset("uniform", scale=SCALE)
        b = load_dataset("uniform", scale=SCALE * 2)
        assert a is not b

    @pytest.mark.parametrize("name", [
        "terabyte-bm25", "terabyte-tfidf", "imdb", "httplog", "uniform",
        "zipf",
    ])
    def test_every_dataset_is_runnable(self, name):
        dataset = load_dataset(name, scale=SCALE)
        assert isinstance(dataset, Dataset)
        assert dataset.queries
        for query in dataset.queries:
            assert query, "empty query in %s" % name
            for term in query:
                assert term in dataset.index

    def test_expanded_shares_index_with_bm25(self):
        bm25 = load_dataset("terabyte-bm25", scale=SCALE)
        expanded = load_dataset("terabyte-expanded", scale=SCALE)
        assert expanded.index is bm25.index
        mean_short = sum(len(q) for q in bm25.queries) / len(bm25.queries)
        mean_long = sum(len(q) for q in expanded.queries) / len(
            expanded.queries
        )
        assert mean_long > mean_short

    def test_terabyte_lists_are_padded(self):
        dataset = load_dataset("terabyte-bm25", scale=SCALE)
        # Background padding must extend the universe beyond the corpus.
        assert dataset.num_docs > 2_000

    def test_queries_execute_end_to_end(self):
        from repro.core.algorithms import TopKProcessor

        dataset = load_dataset("terabyte-bm25", scale=SCALE)
        processor = TopKProcessor(dataset.index, cost_ratio=100)
        result = processor.query(dataset.queries[0], 5)
        assert 0 < len(result.items) <= 5
